"""Embedding-model interface and the configurable surrogate implementation.

:class:`EmbeddingModel` is the contract Observatory properties program
against — the paper's extensibility point ("researchers can analyze new
models by specifying the procedure of embedding inference following the
implemented interface").  :class:`SurrogateModel` is the deterministic
numpy implementation driven entirely by a :class:`ModelConfig`; the model
zoo instantiates it nine ways.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.errors import ModelError, UnsupportedLevelError
from repro.models import aggregate
from repro.models.config import ModelConfig, Serialization
from repro.models.encoder import Encoder
from repro.models.serializers import (
    ColumnWiseSerializer,
    RowTemplateSerializer,
    RowWiseSerializer,
    Token,
)
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer, TokenizerConfig


class EmbeddingModel(abc.ABC):
    """Contract every analyzable model implements.

    All ``embed_*`` methods are total over the model's supported levels and
    raise :class:`UnsupportedLevelError` otherwise.  Embeddings are
    deterministic functions of the input table.
    """

    name: str
    dim: int

    @abc.abstractmethod
    def supported_levels(self) -> frozenset:
        """The :class:`EmbeddingLevel` values this model exposes."""

    def supports(self, level: EmbeddingLevel) -> bool:
        return level in self.supported_levels()

    @abc.abstractmethod
    def embed_columns(self, table: Table) -> np.ndarray:
        """Column embeddings, shape [table.num_columns, dim]."""

    @abc.abstractmethod
    def embed_rows(self, table: Table) -> np.ndarray:
        """Row embeddings for serialized rows, shape [k, dim] with k <= num_rows.

        Serialization keeps a prefix of the table's rows, so row ``i`` of the
        result corresponds to row ``i`` of the input table.
        """

    @abc.abstractmethod
    def embed_table(self, table: Table) -> np.ndarray:
        """Whole-table embedding, shape [dim]."""

    @abc.abstractmethod
    def embed_cells(
        self, table: Table, coords: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Embeddings of specific cells; coordinates truncated away are absent."""

    @abc.abstractmethod
    def embed_entities(self, table: Table) -> Dict[str, np.ndarray]:
        """Embeddings of linked entities, keyed by entity id."""

    @abc.abstractmethod
    def embed_value_column(
        self, header: str, values: Sequence[object]
    ) -> np.ndarray:
        """Embedding of a standalone column (header + values), shape [dim].

        Columns longer than the input limit are chunked with the shared
        header and the chunk embeddings aggregated (Measure 5 protocol).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, dim={self.dim})"


class SurrogateModel(EmbeddingModel):
    """Config-driven surrogate: tokenize -> serialize -> encode -> aggregate."""

    def __init__(self, config: ModelConfig):
        self.config = config
        self.name = config.name
        self.dim = config.dim
        self.tokenizer = Tokenizer(
            config=TokenizerConfig(lowercase=config.lowercase)
        )
        self.encoder = Encoder(config)
        if config.serialization == Serialization.COLUMN_WISE:
            self._serializer = ColumnWiseSerializer(
                self.tokenizer,
                config.max_tokens,
                include_header=config.header_weight > 0,
            )
        elif config.serialization == Serialization.ROW_TEMPLATE:
            self._serializer = RowTemplateSerializer(self.tokenizer, config.max_tokens)
        else:
            self._serializer = RowWiseSerializer(
                self.tokenizer,
                config.max_tokens,
                include_header=config.header_weight > 0,
                include_caption=config.include_caption,
            )

    # ------------------------------------------------------------------
    # Pipeline plumbing
    # ------------------------------------------------------------------

    def _effective_table(self, table: Table) -> Table:
        """Apply the model's internal input policy (TaBERT content snapshot)."""
        k = self.config.content_snapshot_rows
        if k is not None and table.num_rows > k:
            return table.head(k)
        return table

    def _encode_table(self, table: Table) -> Tuple[List[Token], np.ndarray, Table]:
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            raise ModelError(
                f"{self.name} encodes rows independently; use embed_rows"
            )
        effective = self._effective_table(table)
        tokens = self._serializer.serialize(effective)
        states = self.encoder.encode(tokens)
        return tokens, states, effective

    def fitted_rows(self, table: Table) -> int:
        """How many leading rows of ``table`` the model actually ingests."""
        effective = self._effective_table(table)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            return effective.num_rows
        return max(1, min(effective.num_rows, self._serializer.fit_rows(effective)))

    def _require(self, level: EmbeddingLevel) -> None:
        if not self.config.supports(level):
            raise UnsupportedLevelError(self.name, level.value)

    def supported_levels(self) -> frozenset:
        return self.config.levels

    # ------------------------------------------------------------------
    # Level embeddings
    # ------------------------------------------------------------------

    def embed_columns(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.COLUMN)
        tokens, states, _ = self._encode_table(table)
        return aggregate.column_embeddings(
            tokens,
            states,
            table.num_columns,
            header_weight=self.config.header_weight,
            use_cls_anchor=self.config.cls_per_column,
        )

    def embed_rows(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.ROW)
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            out = np.zeros((table.num_rows, self.dim))
            for r in range(table.num_rows):
                tokens = self._serializer.serialize_row(table, r)
                states = self.encoder.encode(tokens)
                out[r] = states.mean(axis=0)
            return out
        tokens, states, effective = self._encode_table(table)
        n_rows = aggregate.embedded_row_count(tokens)
        return aggregate.row_embeddings(tokens, states, min(n_rows, effective.num_rows))

    def embed_table(self, table: Table) -> np.ndarray:
        self._require(EmbeddingLevel.TABLE)
        tokens, states, _ = self._encode_table(table)
        return aggregate.table_embedding(
            tokens, states, header_weight=self.config.header_weight
        )

    def embed_cells(
        self, table: Table, coords: Sequence[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], np.ndarray]:
        self._require(EmbeddingLevel.CELL)
        tokens, states, _ = self._encode_table(table)
        return aggregate.cell_embeddings(tokens, states, coords)

    def embed_entities(self, table: Table) -> Dict[str, np.ndarray]:
        self._require(EmbeddingLevel.ENTITY)
        tokens, states, _ = self._encode_table(table)
        sums: Dict[str, np.ndarray] = {}
        counts: Dict[str, int] = {}
        for (row, col), entity_id in table.entity_links.items():
            vec = aggregate.entity_embedding(tokens, states, row, col)
            if vec is None:
                continue
            if entity_id in sums:
                sums[entity_id] = sums[entity_id] + vec
                counts[entity_id] += 1
            else:
                sums[entity_id] = vec
                counts[entity_id] = 1
        return {eid: sums[eid] / counts[eid] for eid in sums}

    def embed_value_column(self, header: str, values: Sequence[object]) -> np.ndarray:
        self._require(EmbeddingLevel.COLUMN)
        if not len(values):
            raise ModelError("cannot embed an empty column")
        snapshot = self.config.content_snapshot_rows
        if snapshot is not None:
            # The model never sees beyond its snapshot; no chunking needed.
            values = list(values)[:snapshot]
            return self._embed_chunk(header, values)
        chunks = self._column_chunks(header, values)
        parts = [self._embed_chunk(header, chunk) for chunk in chunks]
        weights = np.array([len(chunk) for chunk in chunks], dtype=np.float64)
        stacked = np.stack(parts)
        return (stacked * weights[:, None]).sum(axis=0) / weights.sum()

    # ------------------------------------------------------------------

    def _column_chunks(
        self, header: str, values: Sequence[object]
    ) -> List[List[object]]:
        """Split values into chunks that each fit the input budget."""
        values = list(values)
        probe = Table.from_columns([(header, values)])
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            return [values]
        fit = self._serializer.fit_rows(probe)
        if fit <= 0:
            fit = 1
        if fit >= len(values):
            return [values]
        return [values[i : i + fit] for i in range(0, len(values), fit)]

    def _embed_chunk(self, header: str, values: Sequence[object]) -> np.ndarray:
        chunk_table = Table.from_columns([(header, list(values))])
        if self.config.serialization == Serialization.ROW_TEMPLATE:
            # Row-template models average their per-row encodings.
            rows = RowTemplateSerializer(self.tokenizer, self.config.max_tokens)
            states = [
                self.encoder.encode(rows.serialize_row(chunk_table, r)).mean(axis=0)
                for r in range(chunk_table.num_rows)
            ]
            return np.stack(states).mean(axis=0)
        tokens = self._serializer.serialize(chunk_table)
        states = self.encoder.encode(tokens)
        return aggregate.column_embeddings(
            tokens,
            states,
            1,
            header_weight=self.config.header_weight,
            use_cls_anchor=self.config.cls_per_column,
        )[0]
