"""Columnar token plane: interned piece ids + parallel provenance arrays.

Serialized tables used to be lists of frozen :class:`Token` dataclasses,
and every downstream stage — input embedding, attention-mask construction,
token-to-level aggregation — walked them one Python object at a time.
Telemetry showed that Python half of each characterization cell rivalling
the BLAS forward pass.  This module replaces the object stream with a
**columnar** representation:

- :class:`TokenInterner` — a process-wide mapping from token piece strings
  to small integer ids, backed by a growable content-vector matrix per
  embedding dimension (it subsumes the encoder's old per-piece
  ``_CONTENT_CACHE``): ``content_matrix(dim)[piece_ids]`` is the fused
  gather that replaces the per-token content lookup loop.
- :class:`TokenArray` — one serialized sequence as four parallel NumPy
  arrays (``piece_ids``, ``role_ids``, ``rows``, ``cols``).  Length is
  ``piece_ids.shape[0]``; truncation is a NumPy slice; anchor detection is
  a vectorized mask.  Indexing and iteration yield :class:`Token` views,
  so object-oriented call sites (tests, ablations) keep working.
- :class:`TokenArrayBuilder` — the serializer-side accumulator.

Bit-identity contract: the interner stores the *exact* float64 content
vectors the per-token path computed (``token_vector + anisotropy *
global_direction``), so gathers reproduce the legacy embeddings to the
last ulp (locked in by ``tests/test_token_array.py`` against
:mod:`repro.models.reference_plane`).

Wire format: :meth:`TokenArray.to_wire` emits a compact, process-portable
payload — the sorted unique piece strings plus an inverse index and the
provenance arrays — and :meth:`TokenArray.from_wire` re-interns it into
the receiving process's interner.  Pickling goes through the wire format,
which is what lets token batches cross process boundaries (sweep workers)
or, later, an HTTP boundary to a remote encoder service, without ever
shipping process-local ids.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import hashlib
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.seeding import token_vector
from repro.text.vocab import CLS

# Contextual embedding spaces are anisotropic: all vectors share a dominant
# common direction (a well-documented property of BERT-family spaces).  The
# surrogates model it by mixing a fixed global direction into every content
# vector; it is what gives sample fidelity (P5) its high baseline — two
# disjoint halves of a column still point broadly the same way.
CONTENT_ANISOTROPY = 1.0


class TokenRole(enum.Enum):
    """Structural role of a serialized token."""

    SPECIAL = "special"
    CAPTION = "caption"
    HEADER = "header"
    VALUE = "value"


# Integer role ids used in TokenArray.role_ids; the order also fixes the
# row order of the encoder's segment-vector matrix.
ROLE_SPECIAL = 0
ROLE_CAPTION = 1
ROLE_HEADER = 2
ROLE_VALUE = 3

ROLE_ORDER: Tuple[TokenRole, ...] = (
    TokenRole.SPECIAL,
    TokenRole.CAPTION,
    TokenRole.HEADER,
    TokenRole.VALUE,
)
ROLE_TO_ID: Dict[TokenRole, int] = {role: i for i, role in enumerate(ROLE_ORDER)}


@dataclasses.dataclass(frozen=True)
class Token:
    """One serialized token with table provenance.

    ``row``/``col`` are -1 when the token does not belong to a specific
    row/column (caption, global specials).  ``col`` is set on per-column
    specials such as DODUO's column [CLS] anchors so aggregation can find
    them.

    Tokens are the *object view* of the columnar plane: serializers emit
    :class:`TokenArray` natively and materialize ``Token`` instances only
    on demand (indexing, iteration, :meth:`TokenArray.tokens`).
    """

    piece: str
    role: TokenRole
    row: int = -1
    col: int = -1

    @property
    def is_anchor(self) -> bool:
        """True for per-column [CLS] anchors (DODUO-style)."""
        return self.role == TokenRole.SPECIAL and self.piece == CLS and self.col >= 0


class TokenInterner:
    """Process-wide piece-string ↔ integer-id mapping with content vectors.

    Ids are assigned densely in first-intern order and are *process-local*
    — they must never cross a process boundary raw (the wire format
    re-interns by string).  The per-dimension content matrix holds the
    exact float64 vector the legacy per-token cache stored for each piece
    (``token_vector(piece, dim) + CONTENT_ANISOTROPY * global_direction``),
    grown geometrically and filled lazily under a lock; readers gather
    from a returned matrix snapshot without locking.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: Dict[str, int] = {}
        self._pieces: List[str] = []
        self._content: Dict[int, np.ndarray] = {}
        self._filled: Dict[int, int] = {}
        self._global: Dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._pieces)

    # -- interning -----------------------------------------------------

    def intern(self, piece: str) -> int:
        """Id of ``piece``, assigning a fresh one on first sight."""
        pid = self._ids.get(piece)
        if pid is None:
            with self._lock:
                pid = self._ids.get(piece)
                if pid is None:
                    pid = len(self._pieces)
                    self._pieces.append(piece)
                    self._ids[piece] = pid
        return pid

    def intern_many(self, pieces: Sequence[str]) -> List[int]:
        """Ids for every piece (one lock acquisition for the misses)."""
        ids = self._ids
        out = []
        misses = False
        for piece in pieces:
            pid = ids.get(piece)
            if pid is None:
                misses = True
                break
            out.append(pid)
        if not misses:
            return out
        with self._lock:
            out = []
            for piece in pieces:
                pid = ids.get(piece)
                if pid is None:
                    pid = len(self._pieces)
                    self._pieces.append(piece)
                    ids[piece] = pid
                out.append(pid)
        return out

    def piece(self, piece_id: int) -> str:
        """The piece string of an interned id."""
        return self._pieces[piece_id]

    def id_of(self, piece: str) -> int:
        """Id of ``piece`` if interned, else -1 (never a valid id)."""
        return self._ids.get(piece, -1)

    def pieces_for(self, piece_ids: np.ndarray) -> List[str]:
        """Piece strings for an id array, in order."""
        pieces = self._pieces
        return [pieces[int(i)] for i in piece_ids]

    # -- content vectors ----------------------------------------------

    def global_direction(self, dim: int) -> np.ndarray:
        direction = self._global.get(dim)
        if direction is None:
            raw = token_vector("__global_direction__", dim, namespace="content-global")
            direction = raw / np.linalg.norm(raw) * np.sqrt(dim)
            self._global[dim] = direction
        return direction

    def content_matrix(self, dim: int) -> np.ndarray:
        """Content vectors for every interned piece, shape [n_pieces, dim].

        Row ``i`` is exactly the vector the legacy per-piece cache held
        for piece ``i``.  The returned array may have spare capacity rows
        past the currently interned pieces; gathers by valid ids never
        touch them.  Safe to call concurrently with interning: rows for
        every piece interned *before* the call are filled on return.
        """
        n = len(self._pieces)
        if self._filled.get(dim, 0) >= n:
            return self._content[dim]
        with self._lock:
            n = len(self._pieces)
            filled = self._filled.get(dim, 0)
            mat = self._content.get(dim)
            if mat is None or mat.shape[0] < n:
                capacity = max(256, n, 2 * (mat.shape[0] if mat is not None else 0))
                grown = np.empty((capacity, dim), dtype=np.float64)
                if filled:
                    grown[:filled] = mat[:filled]
                mat = grown
            direction = self.global_direction(dim)
            for i in range(filled, n):
                mat[i] = token_vector(self._pieces[i], dim) + CONTENT_ANISOTROPY * direction
            self._content[dim] = mat
            self._filled[dim] = n
            return mat

    def content_vector(self, piece: str, dim: int) -> np.ndarray:
        """One piece's content vector (interning it if new).

        Compat surface for the legacy per-token path; the hot path gathers
        whole sequences via :meth:`content_matrix` instead.
        """
        pid = self.intern(piece)
        return self.content_matrix(dim)[pid]


#: The process-wide interner every serializer, encoder, and TokenArray
#: shares; production code never builds a second one.  Wire-path tests
#: may swap this module attribute to simulate a fresh receiving process,
#: but ONLY for arrays rebuilt via ``from_wire`` afterwards: arrays built
#: earlier keep ids from the old interner, and the serializers/encoder
#: capture this binding (and special-piece ids) at import time, so
#: serialization under a swapped interner is undefined.
INTERNER = TokenInterner()

# Intern the anchor piece eagerly so is_anchor never races first-use.
_ = INTERNER.intern(CLS)


def _as_index_array(values, dtype=np.int32, lower: Optional[int] = None) -> np.ndarray:
    """Validating cast to a 1-D index array.

    ``np.asarray(values, dtype=np.int32)`` wraps out-of-range values
    silently (a 256th role id would become role 0 under ``uint8``), so the
    cast goes through a range check first: out-of-range input is a bug in
    the producer and must raise, never alias another token.  ``lower``
    additionally floors the *values* (piece ids use 0: a negative id
    would gather the wrong content row via Python-style wraparound) and
    is enforced even on the no-conversion fast path.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError("token arrays must be one-dimensional")
    if arr.dtype != dtype:
        if arr.size:
            if not np.issubdtype(arr.dtype, np.integer):
                raise ValueError(
                    f"token arrays must hold integers, got dtype {arr.dtype}"
                )
            info = np.iinfo(dtype)
            lo, hi = int(arr.min()), int(arr.max())
            if lo < info.min or hi > info.max:
                raise ValueError(
                    f"token array value out of range for {np.dtype(dtype).name}: "
                    f"saw [{lo}, {hi}], representable [{info.min}, {info.max}]"
                )
        arr = arr.astype(dtype)
    if lower is not None and arr.size and int(arr.min()) < lower:
        raise ValueError(
            f"token index below {lower}: saw {int(arr.min())} (negative ids "
            "would silently alias through wraparound indexing)"
        )
    return arr


# Content keys every wire payload must carry; ``digest`` is checked
# separately so the legacy opt-out can name exactly what it skips.
_WIRE_KEYS = ("pieces", "piece_index", "role_ids", "rows", "cols")


def _wire_digest(
    pieces: Sequence[str],
    piece_index: np.ndarray,
    role_ids: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
) -> str:
    """The canonical content hash over a (pieces, provenance) decomposition.

    Shared by :meth:`TokenArray.digest` (interner-side) and
    :meth:`TokenArray.from_wire` (payload-side, *before* any interning) —
    one definition so the two sides can never drift.
    """
    digest = hashlib.sha256(b"token-array\x00")
    for piece in pieces:
        digest.update(piece.encode("utf-8", "replace"))
        digest.update(b"\x1f")
    digest.update(b"\x00")
    digest.update(piece_index.astype(np.int32).tobytes())
    digest.update(np.ascontiguousarray(role_ids).tobytes())
    digest.update(np.ascontiguousarray(rows).tobytes())
    digest.update(np.ascontiguousarray(cols).tobytes())
    return digest.hexdigest()


def _wire_field(
    wire: Dict[str, object], key: str, *, lower: int, upper: Optional[int] = None
) -> np.ndarray:
    """One validated integer array out of a wire payload.

    Checks shape, integer dtype, and the ``[lower, upper]`` value range
    *before* any gather uses the values as indices, so malformed payloads
    fail with a message naming the field instead of a bare ``IndexError``
    — and negative indices can never silently alias through Python-style
    wraparound.
    """
    arr = np.asarray(wire[key])
    if arr.ndim != 1:
        raise ValueError(f"wire field {key!r} must be one-dimensional")
    if upper is None:
        upper = int(np.iinfo(np.int32).max)
    if arr.size:
        if not np.issubdtype(arr.dtype, np.integer):
            raise ValueError(
                f"wire field {key!r} must hold integers, got dtype {arr.dtype}"
            )
        lo, hi = int(arr.min()), int(arr.max())
        if lo < lower or hi > upper:
            raise ValueError(
                f"wire field {key!r} out of range: saw [{lo}, {hi}], "
                f"valid [{lower}, {upper}]"
            )
    return arr.astype(np.int32)


class TokenArray:
    """One serialized sequence as four parallel arrays (+ Token views).

    The canonical token stream of the models layer: serializers emit it,
    encoders gather from it, aggregation reduces over it.  Sequence
    semantics (``len``, ``[i]``, iteration, slicing) match the legacy
    ``List[Token]`` exactly, with ``[i]`` materializing a :class:`Token`
    view on demand and ``[a:b]`` returning a (zero-copy) ``TokenArray``.
    """

    __slots__ = ("piece_ids", "role_ids", "rows", "cols")

    def __init__(self, piece_ids, role_ids, rows, cols):
        self.piece_ids = _as_index_array(piece_ids, lower=0)
        self.role_ids = _as_index_array(role_ids, dtype=np.uint8)
        self.rows = _as_index_array(rows)
        self.cols = _as_index_array(cols)
        n = self.piece_ids.shape[0]
        if not (self.role_ids.shape[0] == self.rows.shape[0] == self.cols.shape[0] == n):
            raise ValueError("parallel token arrays must share one length")

    # -- construction --------------------------------------------------

    @classmethod
    def empty(cls) -> "TokenArray":
        return cls([], [], [], [])

    @classmethod
    def from_tokens(cls, tokens: Sequence[Token]) -> "TokenArray":
        """Columnar form of a legacy ``Token`` list (round-trips exactly)."""
        piece_ids = INTERNER.intern_many([t.piece for t in tokens])
        return cls(
            piece_ids,
            [ROLE_TO_ID[t.role] for t in tokens],
            [t.row for t in tokens],
            [t.col for t in tokens],
        )

    @classmethod
    def coerce(cls, tokens: "TokenSequence") -> "TokenArray":
        """Pass ``TokenArray`` through; convert ``Token`` sequences."""
        if isinstance(tokens, TokenArray):
            return tokens
        return cls.from_tokens(tokens)

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return self.piece_ids.shape[0]

    def token(self, i: int) -> Token:
        """The :class:`Token` view of position ``i``."""
        return Token(
            INTERNER.piece(int(self.piece_ids[i])),
            ROLE_ORDER[self.role_ids[i]],
            row=int(self.rows[i]),
            col=int(self.cols[i]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TokenArray(
                self.piece_ids[index],
                self.role_ids[index],
                self.rows[index],
                self.cols[index],
            )
        return self.token(int(index))

    def __iter__(self) -> Iterator[Token]:
        pieces = INTERNER.pieces_for(self.piece_ids)
        for piece, role, row, col in zip(pieces, self.role_ids, self.rows, self.cols):
            yield Token(piece, ROLE_ORDER[role], row=int(row), col=int(col))

    def __repr__(self) -> str:
        return f"TokenArray(len={len(self)})"

    def __eq__(self, other) -> bool:
        if isinstance(other, TokenArray):
            return (
                np.array_equal(self.piece_ids, other.piece_ids)
                and np.array_equal(self.role_ids, other.role_ids)
                and np.array_equal(self.rows, other.rows)
                and np.array_equal(self.cols, other.cols)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                view == tok for view, tok in zip(self, other)
            )
        return NotImplemented

    __hash__ = None  # arrays are mutable; equality is by content

    # -- views ---------------------------------------------------------

    def tokens(self) -> List[Token]:
        """Materialize the legacy ``List[Token]`` view (compat API)."""
        return list(self)

    def pieces(self) -> List[str]:
        """Piece strings in sequence order."""
        return INTERNER.pieces_for(self.piece_ids)

    @property
    def is_anchor(self) -> np.ndarray:
        """Boolean mask of per-column [CLS] anchors (DODUO-style)."""
        cls_id = INTERNER.id_of(CLS)
        return (
            (self.role_ids == ROLE_SPECIAL)
            & (self.cols >= 0)
            & (self.piece_ids == cls_id)
        )

    # -- wire format ---------------------------------------------------

    def _canonical_pieces(self) -> Tuple[List[str], np.ndarray]:
        """Unique piece strings sorted *lexicographically* + inverse index.

        Canonical across processes and interner states: process-local ids
        only pick the unique set; the ordering (and therefore the inverse
        index) depends on the piece strings alone.  Sorting by id instead
        would make two interners that assigned the same pieces in a
        different order disagree on the decomposition — and with it the
        digest — rejecting perfectly valid wire payloads.
        """
        unique, inverse = np.unique(self.piece_ids, return_inverse=True)
        pieces = [INTERNER.piece(int(p)) for p in unique]
        order = sorted(range(len(pieces)), key=pieces.__getitem__)
        rank = np.empty(len(order), dtype=np.int32)
        rank[np.asarray(order, dtype=np.int64)] = np.arange(
            len(order), dtype=np.int32
        )
        return [pieces[i] for i in order], rank[inverse].astype(np.int32)

    def to_wire(self) -> Dict[str, object]:
        """Process-portable payload: piece *strings* + provenance arrays.

        ``pieces`` holds the lexicographically sorted unique piece strings
        and ``piece_index`` indexes into it per position — compact when a
        sequence repeats pieces (tables do, heavily), and the shape a
        remote encoder backend can ship over HTTP as-is.
        """
        pieces, piece_index = self._canonical_pieces()
        return {
            "pieces": pieces,
            "piece_index": piece_index,
            "role_ids": np.ascontiguousarray(self.role_ids),
            "rows": np.ascontiguousarray(self.rows),
            "cols": np.ascontiguousarray(self.cols),
            "digest": self._digest_of(pieces, piece_index),
        }

    @classmethod
    def from_wire(
        cls, wire: Dict[str, object], *, require_digest: bool = True
    ) -> "TokenArray":
        """Rebuild from :meth:`to_wire` output, re-interning locally.

        Every field is bounds-validated *before* construction — a malformed
        payload raises ``ValueError`` with the offending field named, never
        a bare ``IndexError`` (and a negative ``piece_index`` must never
        silently alias a piece through Python indexing).  The ``digest``
        key is mandatory: transport callers (pickle, HTTP) always produce
        it, and a torn or mistranslated payload must never silently embed
        as something else.  ``require_digest=False`` is the explicit
        opt-out for trusted legacy payloads built before the digest existed
        — content validation still runs, only the integrity check is
        skipped.
        """
        missing = [key for key in _WIRE_KEYS if key not in wire]
        if missing:
            raise ValueError(f"token-array wire payload missing keys: {missing}")
        pieces = list(wire["pieces"])
        piece_index = _wire_field(wire, "piece_index", lower=0, upper=len(pieces) - 1)
        role_ids = _wire_field(wire, "role_ids", lower=0, upper=len(ROLE_ORDER) - 1).astype(
            np.uint8
        )
        rows = _wire_field(wire, "rows", lower=-1)
        cols = _wire_field(wire, "cols", lower=-1)
        # Integrity check runs *before* any interning: the process-wide
        # interner (and its content matrices) must never grow from a
        # payload that is about to be rejected — a service fed junk
        # payloads would otherwise leak memory per rejected request.
        # The payload is re-canonicalized (used pieces, lexicographic,
        # deduplicated) exactly as ``digest()`` would after construction.
        expected = wire.get("digest")
        if expected is None:
            if require_digest:
                raise ValueError(
                    "token-array wire payload carries no digest; transport "
                    "payloads must be integrity-checked (pass "
                    "require_digest=False only for trusted legacy payloads)"
                )
        else:
            index_list = piece_index.tolist()
            used = sorted({pieces[i] for i in index_list})
            rank = {piece: i for i, piece in enumerate(used)}
            canonical = np.asarray(
                [rank[pieces[i]] for i in index_list], dtype=np.int32
            )
            if _wire_digest(used, canonical, role_ids, rows, cols) != expected:
                raise ValueError(
                    "token-array wire payload failed its digest check"
                )
        local_ids = np.asarray(INTERNER.intern_many(pieces), dtype=np.int32)
        return cls(
            local_ids[piece_index] if len(piece_index) else piece_index,
            role_ids,
            rows,
            cols,
        )

    def __reduce__(self):
        # Pickle through the wire format: raw piece ids are process-local,
        # so cross-process shipping (sweep workers, remote backends) must
        # re-intern by string on the receiving side.
        return (TokenArray.from_wire, (self.to_wire(),))

    def digest(self) -> str:
        """Content hash over piece strings + provenance array bytes.

        Canonical across processes and interner states: pieces enter the
        hash as *lexicographically* sorted unique strings plus an inverse
        index (see :meth:`_canonical_pieces`), never as raw process-local
        ids.  This is the serialization-side fingerprint cache layers and
        wire transports share.
        """
        return self._digest_of(*self._canonical_pieces())

    def _digest_of(self, pieces: List[str], piece_index: np.ndarray) -> str:
        return _wire_digest(pieces, piece_index, self.role_ids, self.rows, self.cols)


#: What encoder/aggregation entry points accept: the native columnar form
#: or a legacy ``Token`` sequence (coerced on entry).
TokenSequence = Union[TokenArray, Sequence[Token]]


class TokenArrayBuilder:
    """Serializer-side accumulator for one :class:`TokenArray`.

    Appends stay plain-Python-int lists (cheap) and become arrays once at
    :meth:`build`.  Piece interning happens at append time so repeated
    values hit the interner's dict, not the tokenizer.
    """

    __slots__ = ("_piece_ids", "_role_ids", "_rows", "_cols")

    def __init__(self) -> None:
        self._piece_ids: List[int] = []
        self._role_ids: List[int] = []
        self._rows: List[int] = []
        self._cols: List[int] = []

    def __len__(self) -> int:
        return len(self._piece_ids)

    def append_id(self, piece_id: int, role_id: int, row: int = -1, col: int = -1) -> None:
        """Append one token by pre-interned piece id."""
        self._piece_ids.append(piece_id)
        self._role_ids.append(role_id)
        self._rows.append(row)
        self._cols.append(col)

    def extend_ids(
        self, piece_ids: Sequence[int], role_id: int, row: int = -1, col: int = -1
    ) -> None:
        """Append a run of tokens sharing one (role, row, col)."""
        k = len(piece_ids)
        if not k:
            return
        self._piece_ids.extend(piece_ids)
        self._role_ids.extend([role_id] * k)
        self._rows.extend([row] * k)
        self._cols.extend([col] * k)

    def build(self) -> TokenArray:
        return TokenArray(self._piece_ids, self._role_ids, self._rows, self._cols)


# ----------------------------------------------------------------------
# JSON wire codec
# ----------------------------------------------------------------------
#
# The HTTP transport (repro.models.backends.remote) ships wire payloads as
# JSON: piece strings stay a plain string list, provenance arrays travel as
# base64 of their canonical little-endian bytes.  The codec is lossless —
# ``wire_from_jsonable(wire_to_jsonable(w))`` rebuilds arrays with the
# exact dtypes ``to_wire`` emitted, so the digest (computed over those
# bytes) survives the round trip unchanged.

_WIRE_DTYPES = {
    "piece_index": np.dtype("<i4"),
    "role_ids": np.dtype("|u1"),
    "rows": np.dtype("<i4"),
    "cols": np.dtype("<i4"),
}


def wire_to_jsonable(wire: Dict[str, object]) -> Dict[str, object]:
    """JSON-safe form of a :meth:`TokenArray.to_wire` payload."""
    out: Dict[str, object] = {"pieces": list(wire["pieces"])}
    for key, dtype in _WIRE_DTYPES.items():
        arr = np.ascontiguousarray(np.asarray(wire[key]).astype(dtype, copy=False))
        out[key] = base64.b64encode(arr.tobytes()).decode("ascii")
    out["digest"] = wire["digest"]
    return out


def wire_from_jsonable(payload: Dict[str, object]) -> Dict[str, object]:
    """Invert :func:`wire_to_jsonable`; feed the result to ``from_wire``.

    Only decodes — all content/integrity validation (bounds, digest) lives
    in :meth:`TokenArray.from_wire` so every transport shares one checker.
    Raises ``ValueError`` on structurally broken payloads (missing keys,
    non-base64 text, byte counts that are not a whole number of elements).
    """
    missing = [key for key in (*_WIRE_KEYS, "digest") if key not in payload]
    if missing:
        raise ValueError(f"JSON wire payload missing keys: {missing}")
    pieces = payload["pieces"]
    if not isinstance(pieces, list) or not all(isinstance(p, str) for p in pieces):
        raise ValueError("JSON wire field 'pieces' must be a list of strings")
    out: Dict[str, object] = {"pieces": pieces, "digest": payload["digest"]}
    for key, dtype in _WIRE_DTYPES.items():
        text = payload[key]
        if not isinstance(text, str):
            raise ValueError(f"JSON wire field {key!r} must be a base64 string")
        try:
            raw = base64.b64decode(text.encode("ascii"), validate=True)
        except Exception as error:
            raise ValueError(f"JSON wire field {key!r} is not valid base64") from error
        if len(raw) % dtype.itemsize:
            raise ValueError(
                f"JSON wire field {key!r} is torn: {len(raw)} bytes is not a "
                f"multiple of element size {dtype.itemsize}"
            )
        out[key] = np.frombuffer(raw, dtype=dtype)
    return out
