"""Token-to-level aggregation.

Models natively expose token-level embeddings; Observatory needs column,
row, table, cell, and entity embeddings.  Following Section 4.3 of the
paper, higher levels are obtained by aggregating token embeddings using the
serialization provenance: value tokens know their (row, column), header
tokens their column, and per-column ``[CLS]`` anchors are used directly when
the model provides them (DODUO).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.serializers import Token, TokenRole


def _weighted_mean(states: np.ndarray, weights: np.ndarray) -> Optional[np.ndarray]:
    total = weights.sum()
    if total <= 0:
        return None
    return (states * weights[:, None]).sum(axis=0) / total


def column_embeddings(
    tokens: List[Token],
    states: np.ndarray,
    n_columns: int,
    *,
    header_weight: float = 1.0,
    use_cls_anchor: bool = False,
) -> np.ndarray:
    """Column embeddings, shape [n_columns, dim].

    With ``use_cls_anchor`` the per-column ``[CLS]`` token is the column
    embedding (DODUO); otherwise value tokens (weight 1) and header tokens
    (weight ``header_weight``) of the column are mean-pooled.  Columns whose
    tokens were all truncated away fall back to the zero vector.
    """
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_columns, dim), dtype=np.float64)
    if use_cls_anchor:
        for i, tok in enumerate(tokens):
            if tok.is_anchor and 0 <= tok.col < n_columns:
                out[tok.col] = states[i]
        return out
    weights = np.zeros((n_columns, len(tokens)))
    for i, tok in enumerate(tokens):
        if not 0 <= tok.col < n_columns:
            continue
        if tok.role == TokenRole.VALUE:
            weights[tok.col, i] = 1.0
        elif tok.role == TokenRole.HEADER:
            weights[tok.col, i] = header_weight
    for c in range(n_columns):
        pooled = _weighted_mean(states, weights[c])
        if pooled is not None:
            out[c] = pooled
    return out


def row_embeddings(
    tokens: List[Token], states: np.ndarray, n_rows: int
) -> np.ndarray:
    """Row embeddings for the first ``n_rows`` serialized rows.

    Rows are mean-pooled over their value tokens.  Rows truncated away get
    the zero vector; callers that need the embedded-row count should use
    :func:`embedded_row_count`.
    """
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_rows, dim), dtype=np.float64)
    for r in range(n_rows):
        weights = np.fromiter(
            (
                1.0 if (tok.row == r and tok.role == TokenRole.VALUE) else 0.0
                for tok in tokens
            ),
            dtype=np.float64,
            count=len(tokens),
        )
        pooled = _weighted_mean(states, weights)
        if pooled is not None:
            out[r] = pooled
    return out


def embedded_row_count(tokens: List[Token]) -> int:
    """Number of distinct rows with at least one value token in the sequence."""
    return len({tok.row for tok in tokens if tok.row >= 0 and tok.role == TokenRole.VALUE})


def table_embedding(
    tokens: List[Token], states: np.ndarray, *, header_weight: float = 1.0
) -> np.ndarray:
    """Table embedding: mean over value + weighted header + caption tokens."""
    weights = np.zeros(len(tokens))
    for i, tok in enumerate(tokens):
        if tok.role == TokenRole.VALUE or tok.role == TokenRole.CAPTION:
            weights[i] = 1.0
        elif tok.role == TokenRole.HEADER:
            weights[i] = header_weight
    pooled = _weighted_mean(states, weights)
    if pooled is None:
        raise ModelError("cannot pool a table embedding from an empty sequence")
    return pooled


def cell_embedding(
    tokens: List[Token], states: np.ndarray, row: int, col: int
) -> Optional[np.ndarray]:
    """Mean of the value tokens of cell (row, col); None if truncated away."""
    weights = np.fromiter(
        (
            1.0
            if (tok.row == row and tok.col == col and tok.role == TokenRole.VALUE)
            else 0.0
            for tok in tokens
        ),
        dtype=np.float64,
        count=len(tokens),
    )
    return _weighted_mean(states, weights)


def cell_embeddings(
    tokens: List[Token],
    states: np.ndarray,
    coords: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], np.ndarray]:
    """Cell embeddings for several coordinates in one pass."""
    index: Dict[Tuple[int, int], List[int]] = {}
    wanted = set(coords)
    for i, tok in enumerate(tokens):
        if tok.role == TokenRole.VALUE and (tok.row, tok.col) in wanted:
            index.setdefault((tok.row, tok.col), []).append(i)
    out: Dict[Tuple[int, int], np.ndarray] = {}
    for coord, token_ids in index.items():
        out[coord] = states[token_ids].mean(axis=0)
    return out


def entity_embedding(
    tokens: List[Token],
    states: np.ndarray,
    row: int,
    col: int,
    *,
    metadata_weight: float = 0.5,
) -> Optional[np.ndarray]:
    """Entity embedding: the cell's value tokens plus its header as metadata.

    Entity mentions are cells; the linked column header acts as the
    associated metadata the paper describes (entity embeddings combine the
    mention with its context).
    """
    weights = np.zeros(len(tokens))
    for i, tok in enumerate(tokens):
        if tok.row == row and tok.col == col and tok.role == TokenRole.VALUE:
            weights[i] = 1.0
        elif tok.col == col and tok.role == TokenRole.HEADER:
            weights[i] = metadata_weight
    return _weighted_mean(states, weights)
