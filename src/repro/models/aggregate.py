"""Token-to-level aggregation.

Models natively expose token-level embeddings; Observatory needs column,
row, table, cell, and entity embeddings.  Following Section 4.3 of the
paper, higher levels are obtained by aggregating token embeddings using the
serialization provenance: value tokens know their (row, column), header
tokens their column, and per-column ``[CLS]`` anchors are used directly when
the model provides them (DODUO).

All entry points consume the columnar
:class:`~repro.models.token_array.TokenArray` (legacy ``Token`` lists are
coerced on entry).  The per-token Python loops of the object era are gone
— weight vectors come from vectorized boolean masks over the provenance
arrays — but each level's pooled result is still computed with the *exact*
expression the loops fed (``(states * weights[:, None]).sum(axis=0) /
weights.sum()``), which keeps every output bit-identical to the legacy
path (:mod:`repro.models.reference_plane` locks this in).  No level ever
allocates a dense ``(n_levels, n_tokens)`` weight matrix: masks are built
one level at a time, so transient memory stays linear in sequence length.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.token_array import (
    ROLE_CAPTION,
    ROLE_HEADER,
    ROLE_VALUE,
    TokenArray,
    TokenSequence,
)

__all__ = [
    "column_embeddings",
    "row_embeddings",
    "embedded_row_count",
    "table_embedding",
    "cell_embedding",
    "cell_embeddings",
    "entity_embedding",
]


def _weighted_mean(states: np.ndarray, weights: np.ndarray) -> Optional[np.ndarray]:
    total = weights.sum()
    if total <= 0:
        return None
    return (states * weights[:, None]).sum(axis=0) / total


def column_embeddings(
    tokens: TokenSequence,
    states: np.ndarray,
    n_columns: int,
    *,
    header_weight: float = 1.0,
    use_cls_anchor: bool = False,
) -> np.ndarray:
    """Column embeddings, shape [n_columns, dim].

    With ``use_cls_anchor`` the per-column ``[CLS]`` token is the column
    embedding (DODUO); otherwise value tokens (weight 1) and header tokens
    (weight ``header_weight``) of the column are mean-pooled.  Columns whose
    tokens were all truncated away fall back to the zero vector.
    """
    ta = TokenArray.coerce(tokens)
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_columns, dim), dtype=np.float64)
    if use_cls_anchor:
        anchored = np.nonzero(ta.is_anchor & (ta.cols < n_columns))[0]
        # Fancy assignment keeps sequence order: a duplicate anchor for the
        # same column wins with its *last* occurrence, like the old loop.
        out[ta.cols[anchored]] = states[anchored]
        return out
    cols = ta.cols
    value = ta.role_ids == ROLE_VALUE
    header = ta.role_ids == ROLE_HEADER
    for c in range(n_columns):
        in_col = cols == c
        weights = np.where(
            in_col & value, 1.0, np.where(in_col & header, header_weight, 0.0)
        )
        pooled = _weighted_mean(states, weights)
        if pooled is not None:
            out[c] = pooled
    return out


def row_embeddings(
    tokens: TokenSequence, states: np.ndarray, n_rows: int
) -> np.ndarray:
    """Row embeddings for the first ``n_rows`` serialized rows.

    Rows are mean-pooled over their value tokens.  Rows truncated away get
    the zero vector; callers that need the embedded-row count should use
    :func:`embedded_row_count`.
    """
    ta = TokenArray.coerce(tokens)
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_rows, dim), dtype=np.float64)
    rows = ta.rows
    value = ta.role_ids == ROLE_VALUE
    for r in range(n_rows):
        weights = ((rows == r) & value).astype(np.float64)
        pooled = _weighted_mean(states, weights)
        if pooled is not None:
            out[r] = pooled
    return out


def embedded_row_count(tokens: TokenSequence) -> int:
    """Number of distinct rows with at least one value token in the sequence."""
    ta = TokenArray.coerce(tokens)
    selected = ta.rows[(ta.rows >= 0) & (ta.role_ids == ROLE_VALUE)]
    return int(np.unique(selected).size)


def table_embedding(
    tokens: TokenSequence, states: np.ndarray, *, header_weight: float = 1.0
) -> np.ndarray:
    """Table embedding: mean over value + weighted header + caption tokens."""
    ta = TokenArray.coerce(tokens)
    role = ta.role_ids
    weights = np.where(
        (role == ROLE_VALUE) | (role == ROLE_CAPTION),
        1.0,
        np.where(role == ROLE_HEADER, header_weight, 0.0),
    )
    pooled = _weighted_mean(states, weights)
    if pooled is None:
        raise ModelError("cannot pool a table embedding from an empty sequence")
    return pooled


def cell_embedding(
    tokens: TokenSequence, states: np.ndarray, row: int, col: int
) -> Optional[np.ndarray]:
    """Mean of the value tokens of cell (row, col); None if truncated away."""
    ta = TokenArray.coerce(tokens)
    weights = (
        (ta.rows == row) & (ta.cols == col) & (ta.role_ids == ROLE_VALUE)
    ).astype(np.float64)
    return _weighted_mean(states, weights)


def cell_embeddings(
    tokens: TokenSequence,
    states: np.ndarray,
    coords: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], np.ndarray]:
    """Cell embeddings for several coordinates in one pass.

    One vectorized grouping over the value tokens serves every requested
    coordinate — per-coordinate mask scans would be O(|coords| * tokens),
    a real regression for cell-heavy properties (P4 requests ~2 cells per
    row).  Group means use ascending token indices, matching the legacy
    one-pass dict index bit-for-bit.
    """
    ta = TokenArray.coerce(tokens)
    wanted = set(coords)
    out: Dict[Tuple[int, int], np.ndarray] = {}
    if not wanted:
        return out
    value_idx = np.nonzero(ta.role_ids == ROLE_VALUE)[0]
    if not value_idx.size:
        return out
    rows = ta.rows[value_idx].astype(np.int64)
    cols = ta.cols[value_idx].astype(np.int64)
    # Collapse (row, col) to one sortable key; +1 keeps -1 provenance and
    # the span covers both the tokens' and the requested columns.
    span = max(int(cols.max()), max(c for _, c in wanted), 0) + 2
    keys = (rows + 1) * span + (cols + 1)
    wanted_keys = np.fromiter(
        ((r + 1) * span + (c + 1) for r, c in wanted),
        dtype=np.int64,
        count=len(wanted),
    )
    selected = np.nonzero(np.isin(keys, wanted_keys))[0]
    if not selected.size:
        return out
    # Stable sort keeps token order ascending inside each cell's group.
    ordered = selected[np.argsort(keys[selected], kind="stable")]
    boundaries = np.nonzero(np.diff(keys[ordered]))[0] + 1
    for group in np.split(ordered, boundaries):
        first = group[0]
        coord = (int(rows[first]), int(cols[first]))
        out[coord] = states[value_idx[group]].mean(axis=0)
    return out


def entity_embedding(
    tokens: TokenSequence,
    states: np.ndarray,
    row: int,
    col: int,
    *,
    metadata_weight: float = 0.5,
) -> Optional[np.ndarray]:
    """Entity embedding: the cell's value tokens plus its header as metadata.

    Entity mentions are cells; the linked column header acts as the
    associated metadata the paper describes (entity embeddings combine the
    mention with its context).
    """
    ta = TokenArray.coerce(tokens)
    in_cell = (ta.rows == row) & (ta.cols == col) & (ta.role_ids == ROLE_VALUE)
    in_header = (ta.cols == col) & (ta.role_ids == ROLE_HEADER)
    weights = np.where(in_cell, 1.0, np.where(in_header, metadata_weight, 0.0))
    return _weighted_mean(states, weights)
