"""Frozen PR 3 token plane: the per-token-object reference implementations.

When the token plane went columnar (:mod:`repro.models.token_array`), the
promise was *bit-identity*: every embedding the vectorized gathers and
mask reductions produce must equal, to the last ulp, what the per-token
loops produced.  That promise is only checkable against an executable
oracle, so the legacy loops live here verbatim — operating on
``List[Token]`` exactly as the object era did:

- ``tests/test_token_array.py`` compares the production columnar path
  against these functions for every serializer × model family × backend;
- ``benchmarks/bench_runtime_sweep.py`` times them as the PR 3 baseline
  its serialize+aggregate speedup gate measures against.

Do not "optimize" this module: its entire value is staying byte-for-byte
faithful to the pre-columnar semantics.  Production code must never call
it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.models.config import AttentionMask, OutputNorm, PositionKind
from repro.models.encoder import _content_vector, _layer_norm, _softmax
from repro.models.token_array import Token, TokenRole


# ----------------------------------------------------------------------
# Encoder input plane (legacy Encoder.embed_tokens / masks / bias)
# ----------------------------------------------------------------------


def embed_tokens_reference(encoder, tokens: List[Token]) -> np.ndarray:
    """Initial embeddings via the per-token loop (PR 3 semantics)."""
    cfg = encoder.config
    dim = cfg.dim
    x = np.empty((len(tokens), dim), dtype=np.float64)
    for i, tok in enumerate(tokens):
        vec = _content_vector(tok.piece, dim).copy()
        vec += 0.05 * encoder.weights.segment_vector(tok.role.value)
        if cfg.position_kind == PositionKind.ABSOLUTE and cfg.position_scale:
            vec += cfg.position_scale * encoder.weights.position_vector("abs", i)
        if cfg.position_kind == PositionKind.ROW_COLUMN:
            if tok.row >= 0 and cfg.row_position_scale:
                vec += cfg.row_position_scale * encoder.weights.position_vector(
                    "row", tok.row
                )
            if tok.col >= 0 and cfg.column_position_scale:
                vec += cfg.column_position_scale * encoder.weights.position_vector(
                    "col", tok.col
                )
        elif cfg.column_position_scale and tok.col >= 0:
            vec += cfg.column_position_scale * encoder.weights.position_vector(
                "col", tok.col
            )
        x[i] = vec
    return x


def attention_mask_reference(encoder, tokens: List[Token]) -> np.ndarray:
    """Visibility matrix via the per-token list comprehensions."""
    n = len(tokens)
    kind = encoder.config.attention_mask
    if kind == AttentionMask.FULL:
        return np.ones((n, n), dtype=bool)
    cols = np.array([t.col for t in tokens])
    rows = np.array([t.row for t in tokens])
    is_global = np.array(
        [t.role == TokenRole.SPECIAL and t.col < 0 and t.row < 0 for t in tokens]
    ) | np.array([t.role == TokenRole.CAPTION for t in tokens])
    if kind == AttentionMask.COLUMN_LOCAL:
        same = (cols[:, None] == cols[None, :]) & (cols[:, None] >= 0)
    else:  # ROW_LOCAL
        same = (rows[:, None] == rows[None, :]) & (rows[:, None] >= 0)
    mask = same | is_global[:, None] | is_global[None, :]
    np.fill_diagonal(mask, True)
    return mask


def attention_bias_reference(encoder, tokens: List[Token]) -> np.ndarray:
    """Additive score bias, recomputed per call (no length memo)."""
    n = len(tokens)
    if encoder.config.position_kind != PositionKind.RELATIVE:
        return np.zeros((n, n), dtype=np.float64)
    idx = np.arange(n, dtype=np.float64)
    distance = np.abs(idx[:, None] - idx[None, :])
    return -distance / encoder.config.relative_tau


def encode_reference(encoder, tokens: List[Token]) -> np.ndarray:
    """Single-sequence forward with reference embed/mask/bias.

    The layer loop is the same math the production encoder runs (that part
    was never per-token Python); only the input plane differs.
    """
    if not tokens:
        return np.zeros((0, encoder.config.dim), dtype=np.float64)
    cfg = encoder.config
    x = embed_tokens_reference(encoder, tokens)
    mask = attention_mask_reference(encoder, tokens)
    bias = attention_bias_reference(encoder, tokens)
    neg = np.where(mask, 0.0, -1e9)
    n_heads = cfg.n_heads
    head_dim = cfg.dim // n_heads
    scale = cfg.attention_temperature / np.sqrt(head_dim)

    for layer in encoder.weights.layers:
        h = _layer_norm(x)
        q = h @ layer.wq
        k = h @ layer.wk
        v = h @ layer.wv
        attn_out = np.empty_like(x)
        for head in range(n_heads):
            sl = slice(head * head_dim, (head + 1) * head_dim)
            scores = (q[:, sl] @ k[:, sl].T) * scale + bias + neg
            attn_out[:, sl] = _softmax(scores) @ v[:, sl]
        x = x + cfg.attention_gain * (attn_out @ layer.wo)
        h = _layer_norm(x)
        x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

    if cfg.output_norm == OutputNorm.LAYER:
        x = _layer_norm(x)
    if cfg.output_scale != 1.0:
        x = x * cfg.output_scale
    if cfg.anisotropy:
        coeff = cfg.anisotropy_shift + x @ encoder.weights.anisotropy_probe
        x = x + cfg.anisotropy * np.outer(coeff, encoder.weights.anisotropy_direction)
    return x


# ----------------------------------------------------------------------
# Aggregation plane (legacy repro.models.aggregate loops)
# ----------------------------------------------------------------------


def _weighted_mean(states: np.ndarray, weights: np.ndarray) -> Optional[np.ndarray]:
    total = weights.sum()
    if total <= 0:
        return None
    return (states * weights[:, None]).sum(axis=0) / total


def column_embeddings_reference(
    tokens: List[Token],
    states: np.ndarray,
    n_columns: int,
    *,
    header_weight: float = 1.0,
    use_cls_anchor: bool = False,
) -> np.ndarray:
    """Column pooling via the per-token loop and dense weight matrix."""
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_columns, dim), dtype=np.float64)
    if use_cls_anchor:
        for i, tok in enumerate(tokens):
            if tok.is_anchor and 0 <= tok.col < n_columns:
                out[tok.col] = states[i]
        return out
    weights = np.zeros((n_columns, len(tokens)))
    for i, tok in enumerate(tokens):
        if not 0 <= tok.col < n_columns:
            continue
        if tok.role == TokenRole.VALUE:
            weights[tok.col, i] = 1.0
        elif tok.role == TokenRole.HEADER:
            weights[tok.col, i] = header_weight
    for c in range(n_columns):
        pooled = _weighted_mean(states, weights[c])
        if pooled is not None:
            out[c] = pooled
    return out


def row_embeddings_reference(
    tokens: List[Token], states: np.ndarray, n_rows: int
) -> np.ndarray:
    """Row pooling via per-row ``np.fromiter`` token scans."""
    dim = states.shape[1] if states.size else 0
    out = np.zeros((n_rows, dim), dtype=np.float64)
    for r in range(n_rows):
        weights = np.fromiter(
            (
                1.0 if (tok.row == r and tok.role == TokenRole.VALUE) else 0.0
                for tok in tokens
            ),
            dtype=np.float64,
            count=len(tokens),
        )
        pooled = _weighted_mean(states, weights)
        if pooled is not None:
            out[r] = pooled
    return out


def embedded_row_count_reference(tokens: List[Token]) -> int:
    return len(
        {tok.row for tok in tokens if tok.row >= 0 and tok.role == TokenRole.VALUE}
    )


def table_embedding_reference(
    tokens: List[Token], states: np.ndarray, *, header_weight: float = 1.0
) -> np.ndarray:
    weights = np.zeros(len(tokens))
    for i, tok in enumerate(tokens):
        if tok.role == TokenRole.VALUE or tok.role == TokenRole.CAPTION:
            weights[i] = 1.0
        elif tok.role == TokenRole.HEADER:
            weights[i] = header_weight
    pooled = _weighted_mean(states, weights)
    if pooled is None:
        raise ModelError("cannot pool a table embedding from an empty sequence")
    return pooled


def cell_embedding_reference(
    tokens: List[Token], states: np.ndarray, row: int, col: int
) -> Optional[np.ndarray]:
    weights = np.fromiter(
        (
            1.0
            if (tok.row == row and tok.col == col and tok.role == TokenRole.VALUE)
            else 0.0
            for tok in tokens
        ),
        dtype=np.float64,
        count=len(tokens),
    )
    return _weighted_mean(states, weights)


def cell_embeddings_reference(
    tokens: List[Token],
    states: np.ndarray,
    coords: Sequence[Tuple[int, int]],
) -> Dict[Tuple[int, int], np.ndarray]:
    index: Dict[Tuple[int, int], List[int]] = {}
    wanted = set(coords)
    for i, tok in enumerate(tokens):
        if tok.role == TokenRole.VALUE and (tok.row, tok.col) in wanted:
            index.setdefault((tok.row, tok.col), []).append(i)
    out: Dict[Tuple[int, int], np.ndarray] = {}
    for coord, token_ids in index.items():
        out[coord] = states[token_ids].mean(axis=0)
    return out


def entity_embedding_reference(
    tokens: List[Token],
    states: np.ndarray,
    row: int,
    col: int,
    *,
    metadata_weight: float = 0.5,
) -> Optional[np.ndarray]:
    weights = np.zeros(len(tokens))
    for i, tok in enumerate(tokens):
        if tok.row == row and tok.col == col and tok.role == TokenRole.VALUE:
            weights[i] = 1.0
        elif tok.col == col and tok.role == TokenRole.HEADER:
            weights[i] = metadata_weight
    return _weighted_mean(states, weights)
