"""Table serialization: flattening tables into token sequences.

Transformer models consume flat token sequences, so tables must be
serialized (Section 4.3 of the paper).  Two families are implemented:

* row-wise — rows concatenated with separators (TURL, TAPAS, TaBERT, and
  the vanilla LMs applied to tables);
* column-wise — columns concatenated, each introduced by its own ``[CLS]``
  anchor that doubles as the column representation (DODUO);

plus TapTap's per-row text templates.  Serializers enforce the model input
limit the way the paper does: *keep every column, binary-search the maximum
number of rows that fits*.

Serializers emit the columnar :class:`~repro.models.token_array.TokenArray`
natively — piece ids are interned at append time, so the hot path never
constructs per-token objects.  The legacy ``Token``-object emitters
(``serialize_tokens`` and friends) are kept verbatim as the compat /
reference API: ablations and the bit-identity suite compare the two, and
``benchmarks/bench_runtime_sweep.py`` times the object path as the PR 3
serialization baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SerializationError
from repro.models.token_array import (
    INTERNER,
    ROLE_CAPTION,
    ROLE_HEADER,
    ROLE_SPECIAL,
    ROLE_VALUE,
    Token,
    TokenArray,
    TokenArrayBuilder,
    TokenRole,
)
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import CELL, CLS, HEADER, ROW, SEP

__all__ = [
    "Token",
    "TokenRole",
    "TokenArray",
    "RowWiseSerializer",
    "ColumnWiseSerializer",
    "RowTemplateSerializer",
]

# Structural specials are shared by every sequence; intern them once.
_CLS_ID = INTERNER.intern(CLS)
_SEP_ID = INTERNER.intern(SEP)
_ROW_ID = INTERNER.intern(ROW)
_CELL_ID = INTERNER.intern(CELL)
_HEADER_ID = INTERNER.intern(HEADER)
_IS_ID = INTERNER.intern("is")


class _PieceIds:
    """Memoized text → interned-piece-id list (the serializer hot path).

    Tokenization is already memoized inside :class:`Tokenizer`; this second
    tier also skips the per-piece interner lookups for repeated cell
    values, which shuffle sweeps re-serialize thousands of times.
    """

    _CACHE_LIMIT = 65536

    __slots__ = ("tokenizer", "_cache")

    def __init__(self, tokenizer: Tokenizer):
        self.tokenizer = tokenizer
        self._cache: Dict[str, List[int]] = {}

    def ids(self, text: str) -> List[int]:
        cached = self._cache.get(text)
        if cached is None:
            cached = INTERNER.intern_many(self.tokenizer.tokenize(text))
            if len(self._cache) < self._CACHE_LIMIT:
                self._cache[text] = cached
        return cached


class RowWiseSerializer:
    """Row-by-row serialization with header block and row separators.

    Layout::

        [CLS] caption? [SEP] h1 h2 … [SEP] [ROW] r1c1 [CELL] r1c2 … [SEP] [ROW] …

    Cell boundaries inside a row are marked with ``[CELL]`` so that cell- and
    entity-level aggregation can recover token spans without inserting one
    special per cell (which would eat the input budget, as the paper notes).
    """

    def __init__(
        self,
        tokenizer: Tokenizer,
        max_tokens: int = 512,
        *,
        include_header: bool = True,
        include_caption: bool = False,
    ):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.include_header = include_header
        self.include_caption = include_caption
        self._ids = _PieceIds(tokenizer)

    def serialize_rows(self, table: Table, n_rows: int) -> TokenArray:
        """Serialize the first ``n_rows`` rows without enforcing the budget."""
        ids = self._ids.ids
        out = TokenArrayBuilder()
        out.append_id(_CLS_ID, ROLE_SPECIAL)
        if self.include_caption and table.caption:
            out.extend_ids(ids(table.caption), ROLE_CAPTION)
            out.append_id(_SEP_ID, ROLE_SPECIAL)
        if self.include_header:
            for c, name in enumerate(table.header):
                out.extend_ids(ids(name), ROLE_HEADER, col=c)
                out.append_id(_HEADER_ID, ROLE_SPECIAL, col=c)
            out.append_id(_SEP_ID, ROLE_SPECIAL)
        n_columns = table.num_columns
        for r in range(min(n_rows, table.num_rows)):
            out.append_id(_ROW_ID, ROLE_SPECIAL, row=r)
            for c in range(n_columns):
                value = table.cell(r, c)
                out.extend_ids(
                    ids("" if value is None else str(value)), ROLE_VALUE, row=r, col=c
                )
                if c < n_columns - 1:
                    out.append_id(_CELL_ID, ROLE_SPECIAL, row=r, col=c)
            out.append_id(_SEP_ID, ROLE_SPECIAL, row=r)
        return out.build()

    def fit_rows(self, table: Table) -> int:
        """Maximum number of rows that fits the budget (binary search).

        Mirrors the paper's protocol: all columns are always kept; at least
        one row is attempted even if it overflows (the sequence is then
        truncated hard by :meth:`serialize`).
        """
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize(self, table: Table, n_rows: Optional[int] = None) -> TokenArray:
        """Serialize within budget; returns at most ``max_tokens`` tokens."""
        if table.num_rows == 0:
            return self.serialize_rows(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows(table)
        if n_rows == 0:
            # Even a single row overflows: keep one row, truncate hard.
            return self.serialize_rows(table, 1)[: self.max_tokens]
        return self.serialize_rows(table, n_rows)

    # -- legacy Token-object path (compat / reference) -----------------

    def serialize_rows_tokens(self, table: Table, n_rows: int) -> List[Token]:
        """Frozen PR 3 object emitter; layout-identical to the columnar path."""
        tokens: List[Token] = [Token(CLS, TokenRole.SPECIAL)]
        if self.include_caption and table.caption:
            tokens.extend(
                Token(p, TokenRole.CAPTION)
                for p in self.tokenizer.tokenize(table.caption)
            )
            tokens.append(Token(SEP, TokenRole.SPECIAL))
        if self.include_header:
            for c, name in enumerate(table.header):
                tokens.extend(
                    Token(p, TokenRole.HEADER, col=c)
                    for p in self.tokenizer.tokenize(name)
                )
                tokens.append(Token(HEADER, TokenRole.SPECIAL, col=c))
            tokens.append(Token(SEP, TokenRole.SPECIAL))
        for r in range(min(n_rows, table.num_rows)):
            tokens.append(Token(ROW, TokenRole.SPECIAL, row=r))
            for c in range(table.num_columns):
                value = table.cell(r, c)
                pieces = self.tokenizer.tokenize("" if value is None else str(value))
                tokens.extend(Token(p, TokenRole.VALUE, row=r, col=c) for p in pieces)
                if c < table.num_columns - 1:
                    tokens.append(Token(CELL, TokenRole.SPECIAL, row=r, col=c))
            tokens.append(Token(SEP, TokenRole.SPECIAL, row=r))
        return tokens

    def fit_rows_tokens(self, table: Table) -> int:
        """Binary search probing with the object emitter (PR 3 cost model)."""
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows_tokens(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize_tokens(self, table: Table, n_rows: Optional[int] = None) -> List[Token]:
        """Legacy ``List[Token]`` form of :meth:`serialize` (same truncation)."""
        if table.num_rows == 0:
            return self.serialize_rows_tokens(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows_tokens(table)
        if n_rows == 0:
            return self.serialize_rows_tokens(table, 1)[: self.max_tokens]
        return self.serialize_rows_tokens(table, n_rows)


class ColumnWiseSerializer:
    """Column-by-column serialization with per-column [CLS] anchors (DODUO).

    Layout::

        [CLS]₀ v(0,0) v(1,0) … [SEP] [CLS]₁ v(0,1) … [SEP] …

    DODUO feeds *values only* — headers are ignored, which is why its
    embeddings show exactly zero variance under schema perturbations (P7).
    ``include_header`` exists for ablations.
    """

    def __init__(
        self,
        tokenizer: Tokenizer,
        max_tokens: int = 512,
        *,
        include_header: bool = False,
    ):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.include_header = include_header
        self._ids = _PieceIds(tokenizer)

    def serialize_rows(self, table: Table, n_rows: int) -> TokenArray:
        ids = self._ids.ids
        out = TokenArrayBuilder()
        for c in range(table.num_columns):
            out.append_id(_CLS_ID, ROLE_SPECIAL, col=c)
            if self.include_header:
                out.extend_ids(ids(table.header[c]), ROLE_HEADER, col=c)
                out.append_id(_HEADER_ID, ROLE_SPECIAL, col=c)
            for r in range(min(n_rows, table.num_rows)):
                value = table.cell(r, c)
                out.extend_ids(
                    ids("" if value is None else str(value)), ROLE_VALUE, row=r, col=c
                )
            out.append_id(_SEP_ID, ROLE_SPECIAL, col=c)
        return out.build()

    def fit_rows(self, table: Table) -> int:
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize(self, table: Table, n_rows: Optional[int] = None) -> TokenArray:
        if table.num_rows == 0:
            return self.serialize_rows(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows(table)
        if n_rows == 0:
            return self.serialize_rows(table, 1)[: self.max_tokens]
        return self.serialize_rows(table, n_rows)

    # -- legacy Token-object path (compat / reference) -----------------

    def serialize_rows_tokens(self, table: Table, n_rows: int) -> List[Token]:
        """Frozen PR 3 object emitter; layout-identical to the columnar path."""
        tokens: List[Token] = []
        for c in range(table.num_columns):
            tokens.append(Token(CLS, TokenRole.SPECIAL, col=c))
            if self.include_header:
                tokens.extend(
                    Token(p, TokenRole.HEADER, col=c)
                    for p in self.tokenizer.tokenize(table.header[c])
                )
                tokens.append(Token(HEADER, TokenRole.SPECIAL, col=c))
            for r in range(min(n_rows, table.num_rows)):
                value = table.cell(r, c)
                pieces = self.tokenizer.tokenize("" if value is None else str(value))
                tokens.extend(Token(p, TokenRole.VALUE, row=r, col=c) for p in pieces)
            tokens.append(Token(SEP, TokenRole.SPECIAL, col=c))
        return tokens

    def fit_rows_tokens(self, table: Table) -> int:
        """Binary search probing with the object emitter (PR 3 cost model)."""
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows_tokens(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize_tokens(self, table: Table, n_rows: Optional[int] = None) -> List[Token]:
        """Legacy ``List[Token]`` form of :meth:`serialize` (same truncation)."""
        if table.num_rows == 0:
            return self.serialize_rows_tokens(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows_tokens(table)
        if n_rows == 0:
            return self.serialize_rows_tokens(table, 1)[: self.max_tokens]
        return self.serialize_rows_tokens(table, n_rows)


class RowTemplateSerializer:
    """Per-row natural-language templates (TapTap).

    Each row becomes its own independent sequence: ``name is Alice [CELL]
    age is 30 …``.  Rows never see each other, which is why TapTap only
    yields row embeddings and is excluded from the order-sensitivity
    properties.
    """

    def __init__(self, tokenizer: Tokenizer, max_tokens: int = 512):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self._ids = _PieceIds(tokenizer)

    def serialize_row(self, table: Table, row: int) -> TokenArray:
        if not 0 <= row < table.num_rows:
            raise SerializationError(f"row {row} out of range")
        ids = self._ids.ids
        out = TokenArrayBuilder()
        out.append_id(_CLS_ID, ROLE_SPECIAL, row=row)
        for c, name in enumerate(table.header):
            out.extend_ids(ids(name), ROLE_HEADER, row=row, col=c)
            out.append_id(_IS_ID, ROLE_SPECIAL, row=row, col=c)
            value = table.cell(row, c)
            out.extend_ids(
                ids("" if value is None else str(value)), ROLE_VALUE, row=row, col=c
            )
            out.append_id(_CELL_ID, ROLE_SPECIAL, row=row, col=c)
        return out.build()[: self.max_tokens]

    def serialize(self, table: Table) -> List[TokenArray]:
        """One token sequence per row."""
        return [self.serialize_row(table, r) for r in range(table.num_rows)]

    # -- legacy Token-object path (compat / reference) -----------------

    def serialize_row_tokens(self, table: Table, row: int) -> List[Token]:
        """Frozen PR 3 object emitter; layout-identical to the columnar path."""
        if not 0 <= row < table.num_rows:
            raise SerializationError(f"row {row} out of range")
        tokens: List[Token] = [Token(CLS, TokenRole.SPECIAL, row=row)]
        for c, name in enumerate(table.header):
            tokens.extend(
                Token(p, TokenRole.HEADER, row=row, col=c)
                for p in self.tokenizer.tokenize(name)
            )
            tokens.append(Token("is", TokenRole.SPECIAL, row=row, col=c))
            value = table.cell(row, c)
            tokens.extend(
                Token(p, TokenRole.VALUE, row=row, col=c)
                for p in self.tokenizer.tokenize("" if value is None else str(value))
            )
            tokens.append(Token(CELL, TokenRole.SPECIAL, row=row, col=c))
        return tokens[: self.max_tokens]

    def serialize_tokens(self, table: Table) -> List[List[Token]]:
        """Legacy ``List[Token]`` sequences, one per row."""
        return [self.serialize_row_tokens(table, r) for r in range(table.num_rows)]
