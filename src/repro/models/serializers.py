"""Table serialization: flattening tables into token sequences.

Transformer models consume flat token sequences, so tables must be
serialized (Section 4.3 of the paper).  Two families are implemented:

* row-wise — rows concatenated with separators (TURL, TAPAS, TaBERT, and
  the vanilla LMs applied to tables);
* column-wise — columns concatenated, each introduced by its own ``[CLS]``
  anchor that doubles as the column representation (DODUO);

plus TapTap's per-row text templates.  Serializers enforce the model input
limit the way the paper does: *keep every column, binary-search the maximum
number of rows that fits*.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from repro.errors import SerializationError
from repro.relational.table import Table
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import CELL, CLS, HEADER, ROW, SEP


class TokenRole(enum.Enum):
    """Structural role of a serialized token."""

    SPECIAL = "special"
    CAPTION = "caption"
    HEADER = "header"
    VALUE = "value"


@dataclasses.dataclass(frozen=True)
class Token:
    """One serialized token with table provenance.

    ``row``/``col`` are -1 when the token does not belong to a specific
    row/column (caption, global specials).  ``col`` is set on per-column
    specials such as DODUO's column [CLS] anchors so aggregation can find
    them.
    """

    piece: str
    role: TokenRole
    row: int = -1
    col: int = -1

    @property
    def is_anchor(self) -> bool:
        """True for per-column [CLS] anchors (DODUO-style)."""
        return self.role == TokenRole.SPECIAL and self.piece == CLS and self.col >= 0


class RowWiseSerializer:
    """Row-by-row serialization with header block and row separators.

    Layout::

        [CLS] caption? [SEP] h1 h2 … [SEP] [ROW] r1c1 [CELL] r1c2 … [SEP] [ROW] …

    Cell boundaries inside a row are marked with ``[CELL]`` so that cell- and
    entity-level aggregation can recover token spans without inserting one
    special per cell (which would eat the input budget, as the paper notes).
    """

    def __init__(
        self,
        tokenizer: Tokenizer,
        max_tokens: int = 512,
        *,
        include_header: bool = True,
        include_caption: bool = False,
    ):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.include_header = include_header
        self.include_caption = include_caption

    def serialize_rows(self, table: Table, n_rows: int) -> List[Token]:
        """Serialize the first ``n_rows`` rows without enforcing the budget."""
        tokens: List[Token] = [Token(CLS, TokenRole.SPECIAL)]
        if self.include_caption and table.caption:
            tokens.extend(
                Token(p, TokenRole.CAPTION)
                for p in self.tokenizer.tokenize(table.caption)
            )
            tokens.append(Token(SEP, TokenRole.SPECIAL))
        if self.include_header:
            for c, name in enumerate(table.header):
                tokens.extend(
                    Token(p, TokenRole.HEADER, col=c)
                    for p in self.tokenizer.tokenize(name)
                )
                tokens.append(Token(HEADER, TokenRole.SPECIAL, col=c))
            tokens.append(Token(SEP, TokenRole.SPECIAL))
        for r in range(min(n_rows, table.num_rows)):
            tokens.append(Token(ROW, TokenRole.SPECIAL, row=r))
            for c in range(table.num_columns):
                value = table.cell(r, c)
                pieces = self.tokenizer.tokenize("" if value is None else str(value))
                tokens.extend(Token(p, TokenRole.VALUE, row=r, col=c) for p in pieces)
                if c < table.num_columns - 1:
                    tokens.append(Token(CELL, TokenRole.SPECIAL, row=r, col=c))
            tokens.append(Token(SEP, TokenRole.SPECIAL, row=r))
        return tokens

    def fit_rows(self, table: Table) -> int:
        """Maximum number of rows that fits the budget (binary search).

        Mirrors the paper's protocol: all columns are always kept; at least
        one row is attempted even if it overflows (the sequence is then
        truncated hard by :meth:`serialize`).
        """
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize(self, table: Table, n_rows: Optional[int] = None) -> List[Token]:
        """Serialize within budget; returns at most ``max_tokens`` tokens."""
        if table.num_rows == 0:
            return self.serialize_rows(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows(table)
        if n_rows == 0:
            # Even a single row overflows: keep one row, truncate hard.
            return self.serialize_rows(table, 1)[: self.max_tokens]
        return self.serialize_rows(table, n_rows)


class ColumnWiseSerializer:
    """Column-by-column serialization with per-column [CLS] anchors (DODUO).

    Layout::

        [CLS]₀ v(0,0) v(1,0) … [SEP] [CLS]₁ v(0,1) … [SEP] …

    DODUO feeds *values only* — headers are ignored, which is why its
    embeddings show exactly zero variance under schema perturbations (P7).
    ``include_header`` exists for ablations.
    """

    def __init__(
        self,
        tokenizer: Tokenizer,
        max_tokens: int = 512,
        *,
        include_header: bool = False,
    ):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens
        self.include_header = include_header

    def serialize_rows(self, table: Table, n_rows: int) -> List[Token]:
        tokens: List[Token] = []
        for c in range(table.num_columns):
            tokens.append(Token(CLS, TokenRole.SPECIAL, col=c))
            if self.include_header:
                tokens.extend(
                    Token(p, TokenRole.HEADER, col=c)
                    for p in self.tokenizer.tokenize(table.header[c])
                )
                tokens.append(Token(HEADER, TokenRole.SPECIAL, col=c))
            for r in range(min(n_rows, table.num_rows)):
                value = table.cell(r, c)
                pieces = self.tokenizer.tokenize("" if value is None else str(value))
                tokens.extend(Token(p, TokenRole.VALUE, row=r, col=c) for p in pieces)
            tokens.append(Token(SEP, TokenRole.SPECIAL, col=c))
        return tokens

    def fit_rows(self, table: Table) -> int:
        lo, hi, best = 1, table.num_rows, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if len(self.serialize_rows(table, mid)) <= self.max_tokens:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def serialize(self, table: Table, n_rows: Optional[int] = None) -> List[Token]:
        if table.num_rows == 0:
            return self.serialize_rows(table, 0)[: self.max_tokens]
        if n_rows is None:
            n_rows = self.fit_rows(table)
        if n_rows == 0:
            return self.serialize_rows(table, 1)[: self.max_tokens]
        return self.serialize_rows(table, n_rows)


class RowTemplateSerializer:
    """Per-row natural-language templates (TapTap).

    Each row becomes its own independent sequence: ``name is Alice [CELL]
    age is 30 …``.  Rows never see each other, which is why TapTap only
    yields row embeddings and is excluded from the order-sensitivity
    properties.
    """

    def __init__(self, tokenizer: Tokenizer, max_tokens: int = 512):
        self.tokenizer = tokenizer
        self.max_tokens = max_tokens

    def serialize_row(self, table: Table, row: int) -> List[Token]:
        if not 0 <= row < table.num_rows:
            raise SerializationError(f"row {row} out of range")
        tokens: List[Token] = [Token(CLS, TokenRole.SPECIAL, row=row)]
        for c, name in enumerate(table.header):
            tokens.extend(
                Token(p, TokenRole.HEADER, row=row, col=c)
                for p in self.tokenizer.tokenize(name)
            )
            tokens.append(Token("is", TokenRole.SPECIAL, row=row, col=c))
            value = table.cell(row, c)
            tokens.extend(
                Token(p, TokenRole.VALUE, row=row, col=c)
                for p in self.tokenizer.tokenize("" if value is None else str(value))
            )
            tokens.append(Token(CELL, TokenRole.SPECIAL, row=row, col=c))
        return tokens[: self.max_tokens]

    def serialize(self, table: Table) -> List[List[Token]]:
        """One token sequence per row."""
        return [self.serialize_row(table, r) for r in range(table.num_rows)]
