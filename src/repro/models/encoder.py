"""Numpy transformer encoder for surrogate models.

A small pre-norm transformer (multi-head self-attention + FFN with residual
connections) whose every parameter is generated deterministically from the
model's seed name.  Token *content* vectors are shared across all models
(``repro.seeding.token_vector``), so different surrogates are different
transforms of a common lexical space — the property that makes cross-model
comparisons such as entity stability (P6) meaningful.

The encoder realizes the configuration axes of :class:`ModelConfig`:
positional schemes (absolute indices, TAPAS-style row/column ids, T5-style
relative-distance attention bias, or none), attention masks (full, TaBERT's
vertical column-local, TapTap's row-local), output normalization, and the
anisotropic output amplification that reproduces T5's stretched embedding
geometry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.models.backends import resolve_backend
from repro.models.config import AttentionMask, ModelConfig, OutputNorm, PositionKind
from repro.models.token_array import (
    CONTENT_ANISOTROPY,
    INTERNER,
    ROLE_CAPTION,
    ROLE_ORDER,
    ROLE_SPECIAL,
    TokenArray,
    TokenSequence,
)
from repro.models.weights import ModelWeights

_LN_EPS = 1e-6

# Back-compat alias: the anisotropic content mixing now lives with the
# interner (repro.models.token_array), which owns the content vectors.
_CONTENT_ANISOTROPY = CONTENT_ANISOTROPY


def _global_direction(dim: int) -> np.ndarray:
    """The shared anisotropy direction (delegates to the interner)."""
    return INTERNER.global_direction(dim)


def _content_vector(piece: str, dim: int) -> np.ndarray:
    """One piece's content vector (delegates to the interner's matrix).

    The columnar hot path gathers whole sequences at once via
    ``INTERNER.content_matrix(dim)[piece_ids]``; this per-piece form exists
    for the legacy/reference token loop and external callers.
    """
    return INTERNER.content_vector(piece, dim)


def _layer_norm(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + _LN_EPS)


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Encoder:
    """Deterministic transformer encoder configured by a :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig, backend=None):
        self.config = config
        self.weights = ModelWeights(config.seed_name, config.dim, config.n_layers)
        # The batching strategy is pluggable (repro.models.backends): the
        # encoder owns the transformer math, the backend owns grouping,
        # padding, and (a)sync scheduling.
        self.backend = resolve_backend(backend)
        # Segment vectors stacked in ROLE_ORDER so role_ids gather them.
        self._segment_matrix = self.weights.segment_matrix(
            tuple(role.value for role in ROLE_ORDER)
        )
        # attention_bias is a pure function of (length, relative_tau) and
        # relative_tau is fixed per encoder — memoize by length.  Cached
        # arrays are marked read-only; the forward passes only add them.
        self._bias_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Input embedding
    # ------------------------------------------------------------------

    def embed_tokens(self, tokens: TokenSequence) -> np.ndarray:
        """Initial embeddings: content + segment + positional terms.

        A fused gather over the columnar plane: content vectors by
        ``piece_ids``, segment vectors by ``role_ids``, positional terms
        from precomputed per-kind matrices — bit-identical to the legacy
        per-token loop (:func:`repro.models.reference_plane.embed_tokens_reference`),
        because every term gathers the exact same float64 vectors and adds
        them in the same order.
        """
        ta = TokenArray.coerce(tokens)
        cfg = self.config
        n = len(ta)
        x = INTERNER.content_matrix(cfg.dim)[ta.piece_ids]
        x += 0.05 * self._segment_matrix[ta.role_ids]
        if n and cfg.position_kind == PositionKind.ABSOLUTE and cfg.position_scale:
            x += cfg.position_scale * self.weights.position_matrix("abs", n)[:n]
        if cfg.position_kind == PositionKind.ROW_COLUMN:
            if cfg.row_position_scale:
                self._add_positions(x, "row", ta.rows, cfg.row_position_scale)
            if cfg.column_position_scale:
                self._add_positions(x, "col", ta.cols, cfg.column_position_scale)
        elif cfg.column_position_scale:
            # Mild column-identity signal for non-ROW_COLUMN schemes.
            self._add_positions(x, "col", ta.cols, cfg.column_position_scale)
        return x

    def _add_positions(
        self, x: np.ndarray, kind: str, indices: np.ndarray, scale: float
    ) -> None:
        """Add ``scale * position(kind, index)`` where ``index >= 0``."""
        selected = np.nonzero(indices >= 0)[0]
        if not selected.size:
            return
        idx = indices[selected]
        matrix = self.weights.position_matrix(kind, int(idx.max()) + 1)
        x[selected] += scale * matrix[idx]

    # ------------------------------------------------------------------
    # Attention structure
    # ------------------------------------------------------------------

    def attention_mask(self, tokens: TokenSequence) -> np.ndarray:
        """Boolean [L, L] visibility matrix according to the config."""
        ta = TokenArray.coerce(tokens)
        n = len(ta)
        kind = self.config.attention_mask
        if kind == AttentionMask.FULL:
            return np.ones((n, n), dtype=bool)
        cols, rows = ta.cols, ta.rows
        is_global = (
            (ta.role_ids == ROLE_SPECIAL) & (cols < 0) & (rows < 0)
        ) | (ta.role_ids == ROLE_CAPTION)
        if kind == AttentionMask.COLUMN_LOCAL:
            same = (cols[:, None] == cols[None, :]) & (cols[:, None] >= 0)
        else:  # ROW_LOCAL
            same = (rows[:, None] == rows[None, :]) & (rows[:, None] >= 0)
        mask = same | is_global[:, None] | is_global[None, :]
        np.fill_diagonal(mask, True)
        return mask

    def attention_bias(self, tokens: TokenSequence) -> np.ndarray:
        """Additive [L, L] score bias (relative-distance decay for T5)."""
        return self.bias_for_length(len(tokens))

    def bias_for_length(self, n: int) -> np.ndarray:
        """Memoized :meth:`attention_bias` keyed by sequence length.

        The bias depends only on ``(length, relative_tau)``; recomputing
        the [L, L] distance matrix per sequence was pure waste.  Returned
        arrays are read-only and shared — callers add, never mutate.
        """
        cached = self._bias_cache.get(n)
        if cached is None:
            if self.config.position_kind != PositionKind.RELATIVE:
                cached = np.zeros((n, n), dtype=np.float64)
            else:
                idx = np.arange(n, dtype=np.float64)
                distance = np.abs(idx[:, None] - idx[None, :])
                cached = -distance / self.config.relative_tau
            cached.flags.writeable = False
            self._bias_cache[n] = cached
        return cached

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------

    def encode_batch(
        self, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Encode many token sequences via the configured backend.

        The grouping/padding strategy lives in ``self.backend``
        (:mod:`repro.models.backends`): :class:`LocalBackend` groups by
        exact length (bit-identical to :meth:`encode` per sequence),
        :class:`PaddedBackend` pads within tolerance tiers for throughput
        on heterogeneous corpora.  Results are returned in input order
        either way.
        """
        return self.backend.encode_batch(self, token_lists, batch_size=batch_size)

    async def aencode_batch(
        self, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Awaitable :meth:`encode_batch` (the streaming executor's hook)."""
        return await self.backend.aencode_batch(
            self, token_lists, batch_size=batch_size
        )

    def _transform_stacked(
        self, x: np.ndarray, neg: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        """Layer loop + output head shared by both stacked forwards.

        ``x`` is [B, L, D]; ``neg``/``bias`` broadcast over [B, H, L, L].
        Heads are carried as an explicit tensor axis ([B, H, L, d]) instead
        of the per-head Python loop of :meth:`encode`; the reshape is pure
        reindexing and every 2D matmul slice keeps the shapes of the
        single-sequence path, so same-length outputs stay bit-identical to
        it.  Keeping this in ONE place is a numerics requirement: the
        padded forward's tolerance contract assumes it runs the exact same
        op sequence as the exact forward.
        """
        cfg = self.config
        batch, length = x.shape[0], x.shape[1]
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        def heads(t: np.ndarray) -> np.ndarray:
            # [B, L, D] -> [B, H, L, d]
            return t.reshape(batch, length, n_heads, head_dim).transpose(0, 2, 1, 3)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = heads(h @ layer.wq)
            k = heads(h @ layer.wk)
            v = heads(h @ layer.wv)
            scores = (q @ np.swapaxes(k, 2, 3)) * scale + bias + neg
            attn = _softmax(scores) @ v  # [B, H, L, d]
            attn_out = attn.transpose(0, 2, 1, 3).reshape(batch, length, cfg.dim)
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * (
                coeff[..., None] * self.weights.anisotropy_direction
            )
        return x

    def forward_batch(self, token_lists: Sequence[TokenSequence]) -> List[np.ndarray]:
        """Batched forward pass over same-length sequences ([B, L, D]).

        Outputs are bit-identical to :meth:`encode` per sequence (see
        :meth:`_transform_stacked`).
        """
        x = np.stack([self.embed_tokens(tokens) for tokens in token_lists])
        mask = np.stack([self.attention_mask(tokens) for tokens in token_lists])
        # The additive bias depends only on sequence length, shared here.
        bias = self.attention_bias(token_lists[0])[None, None, :, :]
        neg = np.where(mask, 0.0, -1e9)[:, None, :, :]
        x = self._transform_stacked(x, neg, bias)
        return [x[b] for b in range(len(token_lists))]

    def forward_padded(self, token_lists: Sequence[TokenSequence]) -> List[np.ndarray]:
        """Batched forward over *mixed-length* sequences, padded + masked.

        Shorter sequences are right-padded with zero vectors to the
        batch's longest length and the padded positions are additively
        masked to -1e9 in every attention score involving them as keys —
        which underflows to exactly 0.0 weight after the softmax, so
        padding never feeds into a real token's state.  Padded *query*
        rows accumulate garbage but are sliced away before returning.

        Outputs are within :data:`~repro.models.backends.PADDED_TOLERANCE`
        of the per-sequence forward, not bit-identical: BLAS kernel choice
        and numpy's pairwise-summation tree depend on matrix shape.  The
        relative-distance attention bias is safely shared because it only
        depends on absolute index distance — the top-left [L, L] corner of
        the longest sequence's bias *is* a length-L sequence's bias.
        """
        batch = len(token_lists)
        lengths = [len(tokens) for tokens in token_lists]
        length = max(lengths)
        x = np.zeros((batch, length, self.config.dim), dtype=np.float64)
        neg = np.full((batch, 1, length, length), -1e9, dtype=np.float64)
        for b, tokens in enumerate(token_lists):
            n = lengths[b]
            x[b, :n] = self.embed_tokens(tokens)
            mask = self.attention_mask(tokens)
            neg[b, 0, :n, :n] = np.where(mask, 0.0, -1e9)
        longest = token_lists[lengths.index(length)]
        bias = self.attention_bias(longest)[None, None, :, :]
        x = self._transform_stacked(x, neg, bias)
        return [x[b, : lengths[b]] for b in range(batch)]

    def encode(self, tokens: TokenSequence) -> np.ndarray:
        """Final token embeddings, shape [len(tokens), dim]."""
        tokens = TokenArray.coerce(tokens)
        if not len(tokens):
            return np.zeros((0, self.config.dim), dtype=np.float64)
        cfg = self.config
        x = self.embed_tokens(tokens)
        mask = self.attention_mask(tokens)
        bias = self.attention_bias(tokens)
        neg = np.where(mask, 0.0, -1e9)
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = h @ layer.wq
            k = h @ layer.wk
            v = h @ layer.wv
            attn_out = np.empty_like(x)
            for head in range(n_heads):
                sl = slice(head * head_dim, (head + 1) * head_dim)
                scores = (q[:, sl] @ k[:, sl].T) * scale + bias + neg
                attn_out[:, sl] = _softmax(scores) @ v[:, sl]
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            # Final layer norm leaves token norms at sqrt(dim), the same
            # scale real transformer hidden states carry — absolute
            # distance measures (P4's translation variance) depend on it.
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * np.outer(coeff, self.weights.anisotropy_direction)
        return x
