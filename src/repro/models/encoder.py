"""Numpy transformer encoder for surrogate models.

A small pre-norm transformer (multi-head self-attention + FFN with residual
connections) whose every parameter is generated deterministically from the
model's seed name.  Token *content* vectors are shared across all models
(``repro.seeding.token_vector``), so different surrogates are different
transforms of a common lexical space — the property that makes cross-model
comparisons such as entity stability (P6) meaningful.

The encoder realizes the configuration axes of :class:`ModelConfig`:
positional schemes (absolute indices, TAPAS-style row/column ids, T5-style
relative-distance attention bias, or none), attention masks (full, TaBERT's
vertical column-local, TapTap's row-local), output normalization, and the
anisotropic output amplification that reproduces T5's stretched embedding
geometry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.config import AttentionMask, ModelConfig, OutputNorm, PositionKind
from repro.models.serializers import Token, TokenRole
from repro.models.weights import ModelWeights
from repro.seeding import token_vector

_LN_EPS = 1e-6

# Above this token count the [B, L, L] attention temporaries of a stacked
# batch exceed CPU cache and batched encoding measures *slower* than
# sequence-at-a-time; encode_batch falls back to singles past it.
_BATCH_MAX_LENGTH = 48

# Contextual embedding spaces are anisotropic: all vectors share a dominant
# common direction (a well-documented property of BERT-family spaces).  The
# surrogates model it by mixing a fixed global direction into every content
# vector; it is what gives sample fidelity (P5) its high baseline — two
# disjoint halves of a column still point broadly the same way.
_CONTENT_ANISOTROPY = 1.0

# Content vectors are model-agnostic; cache them once per process.
_CONTENT_CACHE: Dict[str, np.ndarray] = {}
_GLOBAL_DIRECTION: Dict[int, np.ndarray] = {}


def _global_direction(dim: int) -> np.ndarray:
    direction = _GLOBAL_DIRECTION.get(dim)
    if direction is None:
        raw = token_vector("__global_direction__", dim, namespace="content-global")
        direction = raw / np.linalg.norm(raw) * np.sqrt(dim)
        _GLOBAL_DIRECTION[dim] = direction
    return direction


def _content_vector(piece: str, dim: int) -> np.ndarray:
    key = f"{dim}:{piece}"
    vec = _CONTENT_CACHE.get(key)
    if vec is None:
        vec = token_vector(piece, dim) + _CONTENT_ANISOTROPY * _global_direction(dim)
        _CONTENT_CACHE[key] = vec
    return vec


def _layer_norm(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + _LN_EPS)


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Encoder:
    """Deterministic transformer encoder configured by a :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig):
        self.config = config
        self.weights = ModelWeights(config.seed_name, config.dim, config.n_layers)

    # ------------------------------------------------------------------
    # Input embedding
    # ------------------------------------------------------------------

    def embed_tokens(self, tokens: List[Token]) -> np.ndarray:
        """Initial embeddings: content + segment + positional terms."""
        cfg = self.config
        dim = cfg.dim
        x = np.empty((len(tokens), dim), dtype=np.float64)
        for i, tok in enumerate(tokens):
            vec = _content_vector(tok.piece, dim).copy()
            vec += 0.05 * self.weights.segment_vector(tok.role.value)
            if cfg.position_kind == PositionKind.ABSOLUTE and cfg.position_scale:
                vec += cfg.position_scale * self.weights.position_vector("abs", i)
            if cfg.position_kind == PositionKind.ROW_COLUMN:
                if tok.row >= 0 and cfg.row_position_scale:
                    vec += cfg.row_position_scale * self.weights.position_vector(
                        "row", tok.row
                    )
                if tok.col >= 0 and cfg.column_position_scale:
                    vec += cfg.column_position_scale * self.weights.position_vector(
                        "col", tok.col
                    )
            elif cfg.column_position_scale and tok.col >= 0:
                # Mild column-identity signal for non-ROW_COLUMN schemes.
                vec += cfg.column_position_scale * self.weights.position_vector(
                    "col", tok.col
                )
            x[i] = vec
        return x

    # ------------------------------------------------------------------
    # Attention structure
    # ------------------------------------------------------------------

    def attention_mask(self, tokens: List[Token]) -> np.ndarray:
        """Boolean [L, L] visibility matrix according to the config."""
        n = len(tokens)
        kind = self.config.attention_mask
        if kind == AttentionMask.FULL:
            return np.ones((n, n), dtype=bool)
        cols = np.array([t.col for t in tokens])
        rows = np.array([t.row for t in tokens])
        is_global = np.array(
            [t.role == TokenRole.SPECIAL and t.col < 0 and t.row < 0 for t in tokens]
        ) | np.array([t.role == TokenRole.CAPTION for t in tokens])
        if kind == AttentionMask.COLUMN_LOCAL:
            same = (cols[:, None] == cols[None, :]) & (cols[:, None] >= 0)
        else:  # ROW_LOCAL
            same = (rows[:, None] == rows[None, :]) & (rows[:, None] >= 0)
        mask = same | is_global[:, None] | is_global[None, :]
        np.fill_diagonal(mask, True)
        return mask

    def attention_bias(self, tokens: List[Token]) -> np.ndarray:
        """Additive [L, L] score bias (relative-distance decay for T5)."""
        n = len(tokens)
        if self.config.position_kind != PositionKind.RELATIVE:
            return np.zeros((n, n), dtype=np.float64)
        idx = np.arange(n, dtype=np.float64)
        distance = np.abs(idx[:, None] - idx[None, :])
        return -distance / self.config.relative_tau

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------

    def encode_batch(
        self, token_lists: Sequence[List[Token]], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Encode many token sequences, batching the transformer math.

        Sequences are grouped by length and stacked into [B, L, D] tensors
        so every matmul runs over the whole group at once instead of a
        Python-level loop per table.  Because attention, layer norm, and
        the FFN are independent per sequence, each output is numerically
        identical to what :meth:`encode` produces for that sequence alone;
        results are returned in input order.

        Long sequences are encoded one at a time: past
        :data:`_BATCH_MAX_LENGTH` tokens the stacked [B, L, L] attention
        temporaries fall out of cache and batching is a measured
        *slowdown*, while short sequences (standalone columns, narrow
        projections) gain ~2x.  The cutoff only affects speed — outputs
        are identical either way.
        """
        results: List[Optional[np.ndarray]] = [None] * len(token_lists)
        by_length: Dict[int, List[int]] = {}
        for i, tokens in enumerate(token_lists):
            if not tokens:
                results[i] = np.zeros((0, self.config.dim), dtype=np.float64)
            elif len(tokens) > _BATCH_MAX_LENGTH:
                results[i] = self.encode(tokens)
            else:
                by_length.setdefault(len(tokens), []).append(i)
        # Batches hold same-length sequences only: padding to a common
        # length is NOT bit-safe (BLAS kernel selection depends on matrix
        # shape), and exactness is a harder requirement than speed here.
        for indices in by_length.values():
            for start in range(0, len(indices), max(1, batch_size)):
                chunk = indices[start : start + max(1, batch_size)]
                if len(chunk) == 1:
                    results[chunk[0]] = self.encode(token_lists[chunk[0]])
                    continue
                states = self._forward_batch([token_lists[i] for i in chunk])
                for i, arr in zip(chunk, states):
                    results[i] = arr
        return results

    def _forward_batch(self, token_lists: Sequence[List[Token]]) -> List[np.ndarray]:
        """Batched forward pass over same-length sequences ([B, L, D]).

        Heads are carried as an explicit tensor axis ([B, H, L, d]) instead
        of the per-head Python loop of :meth:`encode`; the reshape is pure
        reindexing and every 2D matmul slice keeps the shapes of the
        single-sequence path, so outputs stay bit-identical to it.
        """
        cfg = self.config
        batch, length = len(token_lists), len(token_lists[0])
        x = np.stack([self.embed_tokens(tokens) for tokens in token_lists])
        mask = np.stack([self.attention_mask(tokens) for tokens in token_lists])
        # The additive bias depends only on sequence length, shared here.
        bias = self.attention_bias(token_lists[0])[None, None, :, :]
        neg = np.where(mask, 0.0, -1e9)[:, None, :, :]
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        def heads(t: np.ndarray) -> np.ndarray:
            # [B, L, D] -> [B, H, L, d]
            return t.reshape(batch, length, n_heads, head_dim).transpose(0, 2, 1, 3)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = heads(h @ layer.wq)
            k = heads(h @ layer.wk)
            v = heads(h @ layer.wv)
            scores = (q @ np.swapaxes(k, 2, 3)) * scale + bias + neg
            attn = _softmax(scores) @ v  # [B, H, L, d]
            attn_out = attn.transpose(0, 2, 1, 3).reshape(batch, length, cfg.dim)
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * (
                coeff[..., None] * self.weights.anisotropy_direction
            )
        return [x[b] for b in range(batch)]

    def encode(self, tokens: List[Token]) -> np.ndarray:
        """Final token embeddings, shape [len(tokens), dim]."""
        if not tokens:
            return np.zeros((0, self.config.dim), dtype=np.float64)
        cfg = self.config
        x = self.embed_tokens(tokens)
        mask = self.attention_mask(tokens)
        bias = self.attention_bias(tokens)
        neg = np.where(mask, 0.0, -1e9)
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = h @ layer.wq
            k = h @ layer.wk
            v = h @ layer.wv
            attn_out = np.empty_like(x)
            for head in range(n_heads):
                sl = slice(head * head_dim, (head + 1) * head_dim)
                scores = (q[:, sl] @ k[:, sl].T) * scale + bias + neg
                attn_out[:, sl] = _softmax(scores) @ v[:, sl]
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            # Final layer norm leaves token norms at sqrt(dim), the same
            # scale real transformer hidden states carry — absolute
            # distance measures (P4's translation variance) depend on it.
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * np.outer(coeff, self.weights.anisotropy_direction)
        return x
