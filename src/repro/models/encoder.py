"""Numpy transformer encoder for surrogate models.

A small pre-norm transformer (multi-head self-attention + FFN with residual
connections) whose every parameter is generated deterministically from the
model's seed name.  Token *content* vectors are shared across all models
(``repro.seeding.token_vector``), so different surrogates are different
transforms of a common lexical space — the property that makes cross-model
comparisons such as entity stability (P6) meaningful.

The encoder realizes the configuration axes of :class:`ModelConfig`:
positional schemes (absolute indices, TAPAS-style row/column ids, T5-style
relative-distance attention bias, or none), attention masks (full, TaBERT's
vertical column-local, TapTap's row-local), output normalization, and the
anisotropic output amplification that reproduces T5's stretched embedding
geometry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.models.backends import resolve_backend
from repro.models.config import AttentionMask, ModelConfig, OutputNorm, PositionKind
from repro.models.serializers import Token, TokenRole
from repro.models.weights import ModelWeights
from repro.seeding import token_vector

_LN_EPS = 1e-6

# Contextual embedding spaces are anisotropic: all vectors share a dominant
# common direction (a well-documented property of BERT-family spaces).  The
# surrogates model it by mixing a fixed global direction into every content
# vector; it is what gives sample fidelity (P5) its high baseline — two
# disjoint halves of a column still point broadly the same way.
_CONTENT_ANISOTROPY = 1.0

# Content vectors are model-agnostic; cache them once per process.
_CONTENT_CACHE: Dict[str, np.ndarray] = {}
_GLOBAL_DIRECTION: Dict[int, np.ndarray] = {}


def _global_direction(dim: int) -> np.ndarray:
    direction = _GLOBAL_DIRECTION.get(dim)
    if direction is None:
        raw = token_vector("__global_direction__", dim, namespace="content-global")
        direction = raw / np.linalg.norm(raw) * np.sqrt(dim)
        _GLOBAL_DIRECTION[dim] = direction
    return direction


def _content_vector(piece: str, dim: int) -> np.ndarray:
    key = f"{dim}:{piece}"
    vec = _CONTENT_CACHE.get(key)
    if vec is None:
        vec = token_vector(piece, dim) + _CONTENT_ANISOTROPY * _global_direction(dim)
        _CONTENT_CACHE[key] = vec
    return vec


def _layer_norm(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + _LN_EPS)


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Encoder:
    """Deterministic transformer encoder configured by a :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig, backend=None):
        self.config = config
        self.weights = ModelWeights(config.seed_name, config.dim, config.n_layers)
        # The batching strategy is pluggable (repro.models.backends): the
        # encoder owns the transformer math, the backend owns grouping,
        # padding, and (a)sync scheduling.
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    # Input embedding
    # ------------------------------------------------------------------

    def embed_tokens(self, tokens: List[Token]) -> np.ndarray:
        """Initial embeddings: content + segment + positional terms."""
        cfg = self.config
        dim = cfg.dim
        x = np.empty((len(tokens), dim), dtype=np.float64)
        for i, tok in enumerate(tokens):
            vec = _content_vector(tok.piece, dim).copy()
            vec += 0.05 * self.weights.segment_vector(tok.role.value)
            if cfg.position_kind == PositionKind.ABSOLUTE and cfg.position_scale:
                vec += cfg.position_scale * self.weights.position_vector("abs", i)
            if cfg.position_kind == PositionKind.ROW_COLUMN:
                if tok.row >= 0 and cfg.row_position_scale:
                    vec += cfg.row_position_scale * self.weights.position_vector(
                        "row", tok.row
                    )
                if tok.col >= 0 and cfg.column_position_scale:
                    vec += cfg.column_position_scale * self.weights.position_vector(
                        "col", tok.col
                    )
            elif cfg.column_position_scale and tok.col >= 0:
                # Mild column-identity signal for non-ROW_COLUMN schemes.
                vec += cfg.column_position_scale * self.weights.position_vector(
                    "col", tok.col
                )
            x[i] = vec
        return x

    # ------------------------------------------------------------------
    # Attention structure
    # ------------------------------------------------------------------

    def attention_mask(self, tokens: List[Token]) -> np.ndarray:
        """Boolean [L, L] visibility matrix according to the config."""
        n = len(tokens)
        kind = self.config.attention_mask
        if kind == AttentionMask.FULL:
            return np.ones((n, n), dtype=bool)
        cols = np.array([t.col for t in tokens])
        rows = np.array([t.row for t in tokens])
        is_global = np.array(
            [t.role == TokenRole.SPECIAL and t.col < 0 and t.row < 0 for t in tokens]
        ) | np.array([t.role == TokenRole.CAPTION for t in tokens])
        if kind == AttentionMask.COLUMN_LOCAL:
            same = (cols[:, None] == cols[None, :]) & (cols[:, None] >= 0)
        else:  # ROW_LOCAL
            same = (rows[:, None] == rows[None, :]) & (rows[:, None] >= 0)
        mask = same | is_global[:, None] | is_global[None, :]
        np.fill_diagonal(mask, True)
        return mask

    def attention_bias(self, tokens: List[Token]) -> np.ndarray:
        """Additive [L, L] score bias (relative-distance decay for T5)."""
        n = len(tokens)
        if self.config.position_kind != PositionKind.RELATIVE:
            return np.zeros((n, n), dtype=np.float64)
        idx = np.arange(n, dtype=np.float64)
        distance = np.abs(idx[:, None] - idx[None, :])
        return -distance / self.config.relative_tau

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------

    def encode_batch(
        self, token_lists: Sequence[List[Token]], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Encode many token sequences via the configured backend.

        The grouping/padding strategy lives in ``self.backend``
        (:mod:`repro.models.backends`): :class:`LocalBackend` groups by
        exact length (bit-identical to :meth:`encode` per sequence),
        :class:`PaddedBackend` pads within tolerance tiers for throughput
        on heterogeneous corpora.  Results are returned in input order
        either way.
        """
        return self.backend.encode_batch(self, token_lists, batch_size=batch_size)

    async def aencode_batch(
        self, token_lists: Sequence[List[Token]], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Awaitable :meth:`encode_batch` (the streaming executor's hook)."""
        return await self.backend.aencode_batch(
            self, token_lists, batch_size=batch_size
        )

    def _transform_stacked(
        self, x: np.ndarray, neg: np.ndarray, bias: np.ndarray
    ) -> np.ndarray:
        """Layer loop + output head shared by both stacked forwards.

        ``x`` is [B, L, D]; ``neg``/``bias`` broadcast over [B, H, L, L].
        Heads are carried as an explicit tensor axis ([B, H, L, d]) instead
        of the per-head Python loop of :meth:`encode`; the reshape is pure
        reindexing and every 2D matmul slice keeps the shapes of the
        single-sequence path, so same-length outputs stay bit-identical to
        it.  Keeping this in ONE place is a numerics requirement: the
        padded forward's tolerance contract assumes it runs the exact same
        op sequence as the exact forward.
        """
        cfg = self.config
        batch, length = x.shape[0], x.shape[1]
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        def heads(t: np.ndarray) -> np.ndarray:
            # [B, L, D] -> [B, H, L, d]
            return t.reshape(batch, length, n_heads, head_dim).transpose(0, 2, 1, 3)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = heads(h @ layer.wq)
            k = heads(h @ layer.wk)
            v = heads(h @ layer.wv)
            scores = (q @ np.swapaxes(k, 2, 3)) * scale + bias + neg
            attn = _softmax(scores) @ v  # [B, H, L, d]
            attn_out = attn.transpose(0, 2, 1, 3).reshape(batch, length, cfg.dim)
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * (
                coeff[..., None] * self.weights.anisotropy_direction
            )
        return x

    def forward_batch(self, token_lists: Sequence[List[Token]]) -> List[np.ndarray]:
        """Batched forward pass over same-length sequences ([B, L, D]).

        Outputs are bit-identical to :meth:`encode` per sequence (see
        :meth:`_transform_stacked`).
        """
        x = np.stack([self.embed_tokens(tokens) for tokens in token_lists])
        mask = np.stack([self.attention_mask(tokens) for tokens in token_lists])
        # The additive bias depends only on sequence length, shared here.
        bias = self.attention_bias(token_lists[0])[None, None, :, :]
        neg = np.where(mask, 0.0, -1e9)[:, None, :, :]
        x = self._transform_stacked(x, neg, bias)
        return [x[b] for b in range(len(token_lists))]

    def forward_padded(self, token_lists: Sequence[List[Token]]) -> List[np.ndarray]:
        """Batched forward over *mixed-length* sequences, padded + masked.

        Shorter sequences are right-padded with zero vectors to the
        batch's longest length and the padded positions are additively
        masked to -1e9 in every attention score involving them as keys —
        which underflows to exactly 0.0 weight after the softmax, so
        padding never feeds into a real token's state.  Padded *query*
        rows accumulate garbage but are sliced away before returning.

        Outputs are within :data:`~repro.models.backends.PADDED_TOLERANCE`
        of the per-sequence forward, not bit-identical: BLAS kernel choice
        and numpy's pairwise-summation tree depend on matrix shape.  The
        relative-distance attention bias is safely shared because it only
        depends on absolute index distance — the top-left [L, L] corner of
        the longest sequence's bias *is* a length-L sequence's bias.
        """
        batch = len(token_lists)
        lengths = [len(tokens) for tokens in token_lists]
        length = max(lengths)
        x = np.zeros((batch, length, self.config.dim), dtype=np.float64)
        neg = np.full((batch, 1, length, length), -1e9, dtype=np.float64)
        for b, tokens in enumerate(token_lists):
            n = lengths[b]
            x[b, :n] = self.embed_tokens(tokens)
            mask = self.attention_mask(tokens)
            neg[b, 0, :n, :n] = np.where(mask, 0.0, -1e9)
        longest = token_lists[lengths.index(length)]
        bias = self.attention_bias(longest)[None, None, :, :]
        x = self._transform_stacked(x, neg, bias)
        return [x[b, : lengths[b]] for b in range(batch)]

    def encode(self, tokens: List[Token]) -> np.ndarray:
        """Final token embeddings, shape [len(tokens), dim]."""
        if not tokens:
            return np.zeros((0, self.config.dim), dtype=np.float64)
        cfg = self.config
        x = self.embed_tokens(tokens)
        mask = self.attention_mask(tokens)
        bias = self.attention_bias(tokens)
        neg = np.where(mask, 0.0, -1e9)
        n_heads = cfg.n_heads
        head_dim = cfg.dim // n_heads
        scale = cfg.attention_temperature / np.sqrt(head_dim)

        for layer in self.weights.layers:
            h = _layer_norm(x)
            q = h @ layer.wq
            k = h @ layer.wk
            v = h @ layer.wv
            attn_out = np.empty_like(x)
            for head in range(n_heads):
                sl = slice(head * head_dim, (head + 1) * head_dim)
                scores = (q[:, sl] @ k[:, sl].T) * scale + bias + neg
                attn_out[:, sl] = _softmax(scores) @ v[:, sl]
            x = x + cfg.attention_gain * (attn_out @ layer.wo)
            h = _layer_norm(x)
            x = x + np.maximum(h @ layer.w1, 0.0) @ layer.w2

        if cfg.output_norm == OutputNorm.LAYER:
            # Final layer norm leaves token norms at sqrt(dim), the same
            # scale real transformer hidden states carry — absolute
            # distance measures (P4's translation variance) depend on it.
            x = _layer_norm(x)
        if cfg.output_scale != 1.0:
            x = x * cfg.output_scale
        if cfg.anisotropy:
            coeff = cfg.anisotropy_shift + x @ self.weights.anisotropy_probe
            x = x + cfg.anisotropy * np.outer(coeff, self.weights.anisotropy_direction)
        return x
