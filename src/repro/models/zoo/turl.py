"""TURL surrogate.

Entity-centric table model pretrained on entity-rich web tables: consumes
the caption and cell entity mentions, exposing entity, cell, column, and
table embeddings (no row level — TURL's objectives are entity/column
oriented).  The paper notes TURL is "designed and implemented to output
embeddings from entity-rich tables like those in WikiTables", which is why
it is excluded from the Spider/NextiaJD/SOTAB-based properties.
"""

from __future__ import annotations

from repro.core.levels import EmbeddingLevel
from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="turl",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=1.7,
    attention_mask=AttentionMask.FULL,
    header_weight=1.0,
    include_caption=True,
    levels=frozenset(
        {
            EmbeddingLevel.TABLE,
            EmbeddingLevel.COLUMN,
            EmbeddingLevel.CELL,
            EmbeddingLevel.ENTITY,
        }
    ),
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the TURL surrogate."""
    return SurrogateModel(CONFIG)
