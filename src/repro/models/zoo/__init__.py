"""The model zoo: the nine models the paper evaluates.

Three vanilla language models (BERT, RoBERTa, T5) and six table embedding
models (TURL, DODUO, TAPAS, TaBERT, TaPEx, TapTap), each a
:class:`~repro.models.base.SurrogateModel` configured to exhibit the
architectural mechanisms of its namesake (DESIGN.md, section 5).
"""

from repro.models.zoo.bert import CONFIG as BERT_CONFIG, build as build_bert
from repro.models.zoo.roberta import CONFIG as ROBERTA_CONFIG, build as build_roberta
from repro.models.zoo.t5 import CONFIG as T5_CONFIG, build as build_t5
from repro.models.zoo.turl import CONFIG as TURL_CONFIG, build as build_turl
from repro.models.zoo.doduo import CONFIG as DODUO_CONFIG, build as build_doduo
from repro.models.zoo.tapas import CONFIG as TAPAS_CONFIG, build as build_tapas
from repro.models.zoo.tabert import CONFIG as TABERT_CONFIG, build as build_tabert
from repro.models.zoo.tapex import CONFIG as TAPEX_CONFIG, build as build_tapex
from repro.models.zoo.taptap import CONFIG as TAPTAP_CONFIG, build as build_taptap

__all__ = [
    "BERT_CONFIG", "build_bert",
    "ROBERTA_CONFIG", "build_roberta",
    "T5_CONFIG", "build_t5",
    "TURL_CONFIG", "build_turl",
    "DODUO_CONFIG", "build_doduo",
    "TAPAS_CONFIG", "build_tapas",
    "TABERT_CONFIG", "build_tabert",
    "TAPEX_CONFIG", "build_tapex",
    "TAPTAP_CONFIG", "build_taptap",
]
