"""TapTap surrogate.

Generative tabular-prediction model that serializes each row independently
through a text template ("name is Alice, age is 30, …") — rows never attend
to each other, so TapTap only yields row embeddings and is trivially
insensitive to row order.  The paper accordingly excludes it from every
property except where row embeddings suffice; the surrogate enforces the
same level restriction.
"""

from __future__ import annotations

from repro.core.levels import EmbeddingLevel
from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="taptap",
    serialization=Serialization.ROW_TEMPLATE,
    position_kind=PositionKind.NONE,
    attention_mask=AttentionMask.ROW_LOCAL,
    header_weight=1.0,
    levels=frozenset({EmbeddingLevel.ROW}),
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the TapTap surrogate."""
    return SurrogateModel(CONFIG)
