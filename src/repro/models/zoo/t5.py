"""T5 surrogate.

Encoder–decoder LM with *relative* position biases and a strongly
anisotropic output geometry: the paper's PCA plots (Figures 6 and 8) show T5
embeddings stretched along one direction, which is why T5 combines high
cosine similarity under shuffling with the highest MCV (dispersion aligned
with the mean direction).  The surrogate reproduces this with a
distance-decay attention bias plus a rank-one output amplification along a
fixed model direction.
"""

from __future__ import annotations

from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="t5",
    serialization=Serialization.ROW_WISE,
    # Learned relative attention makes token representations position-
    # dependent in real T5; the surrogate approximates that net effect with
    # a moderate absolute term, then amplifies the resulting variation along
    # a fixed output direction (the anisotropy the paper's PCA plots show).
    position_kind=PositionKind.ABSOLUTE,
    position_scale=0.8,
    column_position_scale=0.6,  # column-context signal: Fig. 8's wider spread
    attention_mask=AttentionMask.FULL,
    attention_gain=1.5,
    attention_temperature=1.5,
    header_weight=1.0,
    anisotropy=14.0,
    anisotropy_shift=1.0,
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the T5 surrogate."""
    return SurrogateModel(CONFIG)
