"""TAPAS surrogate.

Weakly-supervised table parser with dedicated *row-id and column-id*
positional embeddings instead of a purely sequential index.  Pooled over a
column, the set of row ids is permutation-invariant, which is why TAPAS
column embeddings are robust to row shuffling (Figure 5) while its
column-id embeddings make it sensitive to column order (Figure 7), and why
whole-table context shifts its column embeddings strongly (Table 5).
"""

from __future__ import annotations

from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="tapas",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ROW_COLUMN,
    row_position_scale=0.8,
    column_position_scale=0.5,
    attention_mask=AttentionMask.FULL,
    attention_gain=2.0,
    attention_temperature=2.0,
    header_weight=1.0,
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the TAPAS surrogate."""
    return SurrogateModel(CONFIG)
