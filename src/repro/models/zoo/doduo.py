"""DODUO surrogate.

Column-annotation model: column-wise serialization where one ``[CLS]``
anchor per column doubles as the column representation, *values only* (the
schema is never serialized — hence exactly zero variance under schema
perturbations, Figure 13), strong absolute position embeddings, an extra
layer of cross-column mixing, and an unnormalized output stream (its task
head consumes raw ``[CLS]`` states).  These choices reproduce DODUO's
signature behaviours: the largest spread under row/column shuffling
(Figures 5 and 7), the lowest sample fidelity (Figure 11), extreme
context sensitivity (Table 5), and the huge FD-translation variances of
Table 4.
"""

from __future__ import annotations

from repro.core.levels import EmbeddingLevel
from repro.models.base import SurrogateModel
from repro.models.config import (
    AttentionMask,
    ModelConfig,
    OutputNorm,
    PositionKind,
    Serialization,
)

CONFIG = ModelConfig(
    name="doduo",
    n_layers=3,
    serialization=Serialization.COLUMN_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=1.0,
    attention_mask=AttentionMask.FULL,
    attention_gain=2.0,
    attention_temperature=3.0,  # peaked, selective per-column attention
    header_weight=0.0,  # values only: schema-blind
    cls_per_column=True,
    output_norm=OutputNorm.NONE,
    output_scale=3.0,  # raw-stream magnitudes: Table 4's huge variances
    levels=frozenset(
        {EmbeddingLevel.COLUMN, EmbeddingLevel.CELL, EmbeddingLevel.ENTITY}
    ),
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the DODUO surrogate."""
    return SurrogateModel(CONFIG)
