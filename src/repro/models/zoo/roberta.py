"""RoBERTa surrogate.

Same architecture family as BERT with two differences that matter to
Observatory: a case-sensitive byte-level-style tokenizer — which fragments
abbreviated headers differently and produces RoBERTa's low outliers under
schema-abbreviation perturbations (Figure 13) — and stronger positional
sensitivity, visible as the larger cosine drop under column shuffling
(Figure 7).
"""

from __future__ import annotations

from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="roberta",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=1.6,
    column_position_scale=0.35,  # stronger neighbor-column context signal
    attention_mask=AttentionMask.FULL,
    attention_gain=1.4,
    attention_temperature=1.5,
    header_weight=3.0,  # schema-heavy column pooling: P7 fragility
    lowercase=False,
)


def build() -> SurrogateModel:
    """Construct the RoBERTa surrogate."""
    return SurrogateModel(CONFIG)
