"""BERT surrogate.

The baseline vanilla language model: row-wise serialization (tables have no
native format for an LM, so the paper applies row/column-wise serialization
experimentally), weak absolute position embeddings, full attention,
lowercasing tokenizer.  The paper finds BERT's column and row embeddings
highly robust to row shuffling (Figure 5) and its schema-perturbation
robustness among the best (Figure 13).
"""

from __future__ import annotations

from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="bert",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=0.8,
    column_position_scale=0.15,  # mild neighbor-column context signal
    attention_mask=AttentionMask.FULL,
    attention_gain=1.5,
    attention_temperature=1.5,
    header_weight=1.0,
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the BERT surrogate."""
    return SurrogateModel(CONFIG)
