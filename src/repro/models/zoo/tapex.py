"""TaPEx surrogate.

Pretrained as a neural SQL executor over (SQL query, table) inputs; exposes
row and table embeddings natively (Table 1 of the paper) and column
embeddings by aggregation.  Moderate absolute positional sensitivity shows
up in the paper as wider row-embedding MCV under shuffling (Figure 5,
middle).
"""

from __future__ import annotations

from repro.core.levels import EmbeddingLevel
from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="tapex",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=1.0,
    attention_mask=AttentionMask.FULL,
    header_weight=0.8,
    levels=frozenset(
        {
            EmbeddingLevel.COLUMN,
            EmbeddingLevel.ROW,
            EmbeddingLevel.TABLE,
            EmbeddingLevel.ENTITY,
        }
    ),
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the TaPEx surrogate."""
    return SurrogateModel(CONFIG)
