"""TaBERT surrogate.

Joint text/table encoder with *vertical attention*: after row-wise encoding,
information flows within a column across rows, not across columns — the
surrogate implements this as a column-local attention mask.  TaBERT's
content snapshot only ever feeds the first three rows to the encoder
(the paper cites the K=3 config directly), and its column representations
are dominated by the header.  Together these reproduce TaBERT's paper
profile: only column/table embeddings, near-total context insensitivity
(Table 5), the best sample fidelity (Figure 11), and the worst
schema-perturbation robustness (Figure 13).
"""

from __future__ import annotations

from repro.core.levels import EmbeddingLevel
from repro.models.base import SurrogateModel
from repro.models.config import AttentionMask, ModelConfig, PositionKind, Serialization

CONFIG = ModelConfig(
    name="tabert",
    serialization=Serialization.ROW_WISE,
    position_kind=PositionKind.ABSOLUTE,
    position_scale=0.05,
    attention_mask=AttentionMask.COLUMN_LOCAL,
    header_weight=6.0,  # header-dominated column representations
    content_snapshot_rows=3,
    levels=frozenset({EmbeddingLevel.COLUMN, EmbeddingLevel.TABLE}),
    lowercase=True,
)


def build() -> SurrogateModel:
    """Construct the TaBERT surrogate."""
    return SurrogateModel(CONFIG)
