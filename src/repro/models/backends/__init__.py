"""Pluggable encoder backends.

The batching strategy of every surrogate encoder is a swappable
:class:`EncoderBackend`:

- :class:`LocalBackend` (``"local"``) — exact same-length batching,
  bit-identical to single-sequence encoding.  The default.
- :class:`PaddedBackend` (``"padded"``) — length-bucketed padded batching
  with attention-masked padding; within the documented
  :data:`PADDED_TOLERANCE` of exact, and much faster on
  heterogeneous-length corpora.  Opt in via ``RuntimeConfig(exact=False)``.
- :class:`RemoteBackend` (``"remote"``) — ships TokenArray wire payloads
  over HTTP to a fleet of encoding replicas (keep-alive connection pools,
  retry/backoff with rerouting, gzip and float32 wire tiers, per-replica
  health/latency tracking, hedged requests, latency-aware pipeline
  chunks); bit-identical to local in exact float64 mode, within
  :data:`PADDED_TOLERANCE` / :data:`FLOAT32_TOLERANCE` in the opt-in
  tiers.  Configured by a typed :class:`TransportConfig`; opt in via
  ``RuntimeConfig(backend="remote", transport=TransportConfig(urls=...))``.

Backends also expose ``aencode_batch`` (awaitable encoding), the hook the
streaming executor drives — the remote backend overrides it with real
network I/O.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.errors import ModelError
from repro.models.backends.base import BATCH_MAX_LENGTH, EncoderBackend
from repro.models.backends.local import LocalBackend
from repro.models.backends.padded import (
    DEFAULT_TIER_WIDTH,
    PADDED_TOLERANCE,
    PaddedBackend,
    PaddingStats,
    max_relative_error,
)

_FACTORIES: Dict[str, Callable[[], EncoderBackend]] = {
    "local": LocalBackend,
    "padded": PaddedBackend,
}


def available_backends() -> List[str]:
    return sorted(_FACTORIES)


def register_backend(
    name: str, factory: Callable[[], EncoderBackend], *, overwrite: bool = False
) -> None:
    """Extension point for new strategies (remote, GPU, quantized...)."""
    if name in _FACTORIES and not overwrite:
        raise ModelError(f"backend {name!r} already registered")
    _FACTORIES[name] = factory


def resolve_backend(backend: Union[str, EncoderBackend, None]) -> EncoderBackend:
    """Accept a backend instance, a registered name, or None (= local)."""
    if backend is None:
        return LocalBackend()
    if isinstance(backend, EncoderBackend):
        return backend
    try:
        factory = _FACTORIES[backend]
    except KeyError:
        raise ModelError(
            f"unknown encoder backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory()


# Imported after register_backend exists (remote.py must not import the
# package during its own import); registration goes through the public
# extension point like any third-party backend would.
from repro.models.backends.remote import (  # noqa: E402
    FLOAT32_TOLERANCE,
    REMOTE_URL_ENV,
    RemoteBackend,
    ReplicaStats,
    TransportStats,
)
from repro.models.backends.transport import TransportConfig  # noqa: E402

register_backend("remote", RemoteBackend)

__all__ = [
    "BATCH_MAX_LENGTH",
    "DEFAULT_TIER_WIDTH",
    "EncoderBackend",
    "FLOAT32_TOLERANCE",
    "LocalBackend",
    "PADDED_TOLERANCE",
    "PaddedBackend",
    "PaddingStats",
    "REMOTE_URL_ENV",
    "RemoteBackend",
    "ReplicaStats",
    "TransportConfig",
    "TransportStats",
    "available_backends",
    "max_relative_error",
    "register_backend",
    "resolve_backend",
]
