"""Padded batching with length-bucketed tolerance tiers.

Same-length grouping (:class:`LocalBackend`) forfeits most batches on
heterogeneous corpora: when every sequence has a different length, every
"batch" is a single sequence.  :class:`PaddedBackend` recovers the
throughput by padding sequences to a common length inside *tolerance
tiers* — length buckets of width ``tier_width`` — and masking the padding
out of attention, so a batch mixes nearby lengths while each sequence
wastes strictly fewer than ``tier_width`` padded positions.

Numerics: padding keys are additively masked to -1e9 before the softmax,
which underflows to exactly 0.0 attention weight in float64, and padded
rows never feed back into real rows — the masking is *algebraically*
exact.  Outputs still differ from the unpadded forward in the last few
ulps because BLAS kernel selection and numpy's pairwise-summation tree
depend on matrix shape (typically ~1e-15 relative per element; the
guaranteed bound backends and tests enforce is :data:`PADDED_TOLERANCE`).
Opt in via ``RuntimeConfig(exact=False)`` when that trade is acceptable;
every Observatory measure is a statistic over cosine/Euclidean structure
and is insensitive at these magnitudes.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.backends.base import BATCH_MAX_LENGTH, EncoderBackend
from repro.models.token_array import TokenSequence

# Guaranteed per-element bound, relative to the output's magnitude, between
# this backend and the single-sequence forward.  Observed differences are
# ~1e-15; the bound leaves ~5 orders of headroom for accumulation across
# layers and hostile inputs and is locked in by tests/test_backends.py.
PADDED_TOLERANCE = 1e-9

# Default tier width (tokens).  Within one tier, padding waste per
# sequence is < tier_width positions; across tiers no padding is shared.
DEFAULT_TIER_WIDTH = 8


@dataclasses.dataclass
class PaddingStats:
    """Waste accounting of a padded backend (cumulative, thread-safe)."""

    sequences: int = 0
    padded_batches: int = 0
    real_tokens: int = 0
    padded_tokens: int = 0

    @property
    def waste_ratio(self) -> float:
        """Padded positions as a fraction of all encoded positions."""
        total = self.real_tokens + self.padded_tokens
        return self.padded_tokens / total if total else 0.0

    @classmethod
    def merged(cls, many: Sequence["PaddingStats"]) -> "PaddingStats":
        out = cls()
        for stats in many:
            out.sequences += stats.sequences
            out.padded_batches += stats.padded_batches
            out.real_tokens += stats.real_tokens
            out.padded_tokens += stats.padded_tokens
        return out

    def since(self, baseline: "PaddingStats") -> "PaddingStats":
        """Counters accumulated after ``baseline`` was snapshotted."""
        return PaddingStats(
            sequences=self.sequences - baseline.sequences,
            padded_batches=self.padded_batches - baseline.padded_batches,
            real_tokens=self.real_tokens - baseline.real_tokens,
            padded_tokens=self.padded_tokens - baseline.padded_tokens,
        )


class PaddedBackend(EncoderBackend):
    """Length-bucketed padded batching; tolerance documented above."""

    name = "padded"
    exact = False
    tolerance = PADDED_TOLERANCE

    def __init__(
        self,
        *,
        tier_width: int = DEFAULT_TIER_WIDTH,
        max_batch_length: int = BATCH_MAX_LENGTH,
    ):
        if tier_width < 1:
            raise ValueError("tier_width must be positive")
        self.tier_width = tier_width
        self.max_batch_length = max_batch_length
        self.stats = PaddingStats()
        self._stats_lock = threading.Lock()

    def describe(self) -> str:
        return f"{self.name} (tier_width={self.tier_width}, tol={self.tolerance:g})"

    def stats_snapshot(self) -> PaddingStats:
        """Consistent copy of the cumulative waste counters."""
        with self._stats_lock:
            return dataclasses.replace(self.stats)

    def _tier(self, length: int) -> int:
        return (length - 1) // self.tier_width

    def encode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        results: List[Optional[np.ndarray]] = [None] * len(token_lists)
        tiers: Dict[int, List[int]] = {}
        for i, tokens in enumerate(token_lists):
            if not tokens:
                results[i] = np.zeros((0, encoder.config.dim), dtype=np.float64)
            elif len(tokens) > self.max_batch_length:
                # Long sequences are slower batched than alone (the same
                # cache cliff LocalBackend respects) — padding would only
                # add waste on top.
                results[i] = encoder.encode(tokens)
            else:
                tiers.setdefault(self._tier(len(tokens)), []).append(i)
        for indices in tiers.values():
            for start in range(0, len(indices), max(1, batch_size)):
                chunk = indices[start : start + max(1, batch_size)]
                if len(chunk) == 1:
                    results[chunk[0]] = encoder.encode(token_lists[chunk[0]])
                    continue
                chunk_lists = [token_lists[i] for i in chunk]
                lengths = [len(t) for t in chunk_lists]
                if len(set(lengths)) == 1:
                    # Uniform chunk: the exact stacked forward is both
                    # faster and closer; padding would be pure waste.
                    states = encoder.forward_batch(chunk_lists)
                else:
                    states = encoder.forward_padded(chunk_lists)
                    self._record(lengths)
                for i, arr in zip(chunk, states):
                    results[i] = arr
        return results

    def _record(self, lengths: List[int]) -> None:
        longest = max(lengths)
        with self._stats_lock:
            self.stats.sequences += len(lengths)
            self.stats.padded_batches += 1
            self.stats.real_tokens += sum(lengths)
            self.stats.padded_tokens += sum(longest - n for n in lengths)


def max_relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Per-element error of ``actual`` relative to ``expected``'s magnitude.

    The tolerance contract of :class:`PaddedBackend`:
    ``max_relative_error(padded, exact) <= PADDED_TOLERANCE``.  Magnitude
    is the max absolute value of the exact output (floored at 1.0), so the
    bound is meaningful for both normalized and anisotropic output scales.
    """
    if actual.size == 0:
        return 0.0
    scale = max(1.0, float(np.abs(expected).max()))
    return float(np.abs(actual - expected).max()) / scale
