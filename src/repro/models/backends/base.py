"""The encoder-backend contract.

An :class:`EncoderBackend` owns the *batching strategy* of an
:class:`~repro.models.encoder.Encoder`: given many token sequences, it
decides how they are grouped, padded (or not), and driven through the
encoder's forward passes.  The encoder keeps the transformer math; the
backend keeps the scheduling policy.  This is the seam that lets the
runtime swap exact same-length batching (:class:`LocalBackend`) for
padded tolerance-tier batching (:class:`PaddedBackend`) — and, later,
remote or GPU encoders — without touching models, properties, or the
planner.

Every backend also exposes :meth:`aencode_batch`, the awaitable variant
the streaming executor drives.  The default implementation offloads the
synchronous :meth:`encode_batch` to a worker thread: numpy's BLAS kernels
release the GIL, so an awaiting caller genuinely overlaps pure-Python
work (fingerprinting, serialization, cache probes) with the forward
passes.  A remote backend would override it with real network I/O.
"""

from __future__ import annotations

import abc
import asyncio
from typing import List, Sequence

import numpy as np

from repro.models.token_array import TokenSequence

# Above this token count the [B, L, L] attention temporaries of a stacked
# batch exceed CPU cache and batched encoding measures *slower* than
# sequence-at-a-time; backends fall back to singles past it.
BATCH_MAX_LENGTH = 48


class EncoderBackend(abc.ABC):
    """Batching strategy for an :class:`~repro.models.encoder.Encoder`.

    Attributes:
        name: registry name of the strategy (``"local"``, ``"padded"``).
        exact: whether outputs are bit-identical to encoding each sequence
            alone with :meth:`Encoder.encode`.  Non-exact backends must
            document a per-element ``tolerance`` bound instead.
    """

    name: str = "abstract"
    exact: bool = True

    @property
    def cache_namespace(self):
        """Embedding-cache key-space suffix for this backend's results.

        ``None`` shares the model's plain namespace — correct only for
        exact, in-process backends, whose outputs are interchangeable
        bit-for-bit.  Non-exact backends default to their name so
        tolerance-tier results never cross into an exact run through a
        shared or persistent cache; backends whose results come from
        outside the process (remote) override this to isolate themselves
        even when exact.
        """
        return None if self.exact else self.name

    @abc.abstractmethod
    def encode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Encode every sequence; results in input order.

        ``encoder`` is the owning :class:`~repro.models.encoder.Encoder`;
        backends call its ``encode``/``forward_batch``/``forward_padded``
        primitives rather than reimplementing the transformer.
        """

    async def aencode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Awaitable :meth:`encode_batch`; default offloads to a thread.

        BLAS releases the GIL inside the forward passes, so awaiting this
        overlaps the event loop's other work with the encoder math.
        Remote/GPU backends override this with genuine async I/O.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self.encode_batch(encoder, token_lists, batch_size)
        )

    def describe(self) -> str:
        """One-line human rendering for reports and benchmarks."""
        mode = "exact" if self.exact else "tolerance"
        return f"{self.name} ({mode})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, exact={self.exact})"
