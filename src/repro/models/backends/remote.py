"""Remote encoding over HTTP: a fleet client for the TokenArray wire format.

:class:`RemoteBackend` completes the backend seam PR 3 opened: instead of
running forward passes in-process, it ships serialized sequences — the
JSON form of :meth:`TokenArray.to_wire` payloads, piece strings plus
base64 provenance arrays — to one or more encoding replicas and decodes
the returned hidden states.  The shape follows "BERT Meets Relational DB"
(arXiv:2104.14914): the client serializes and aggregates (pure Python,
cheap) while GPU hosts run the contextual encoder (the expensive part),
and Observatory's 8-properties × many-models sweep matrix is exactly the
workload that wants that split.

Everything about the transport is configured through one typed object,
:class:`~repro.models.backends.transport.TransportConfig`:

- **Replicas** (``urls``): each URL is an independent encoding service.
  The client tracks per-replica health (consecutive failures) and latency
  (per-sequence round-trip EWMA + minimum observed RTT), splits each
  encode chunk into per-replica shards weighted by measured speed, and
  **quarantines** a replica after repeated transport failures — probing
  it again once the quarantine lapses, so a recovered host rejoins the
  rotation without operator action.
- **Keep-alive pooling** (``pool_size``): requests ride HTTP/1.1
  keep-alive connections drawn from a bounded per-replica pool, retiring
  the one-``Connection: close``-socket-per-chunk design; chunked
  transfer-encoded responses are decoded, so real servers (nginx,
  uvicorn) work unmodified.
- **Compression** (``compression="gzip"``): request and response bodies
  are gzip-encoded end to end (the response side is negotiated via
  ``Accept-Encoding``, so it is strictly opt-in).  Base64 float64 states
  inflate raw bytes by ~33%; gzip claws that back and more.
- **State tier** (``state_dtype="float32"``): hidden states ride the
  wire as little-endian float32, halving state bytes within the
  documented :data:`FLOAT32_TOLERANCE` — the same opt-in tolerance-tier
  contract :data:`~repro.models.backends.padded.PADDED_TOLERANCE`
  established.  Requires ``exact=False``; exactness is a promise.
- **Hedged requests** (``hedge_after``): when a chunk has been in flight
  longer than the configured percentile of observed round trips, a
  speculative copy is sent to a different replica.  The first valid
  digest-echoed response wins; the loser is cancelled and its result is
  **never** double-counted (exactly one decoded response is consumed per
  chunk).  This bounds the tail a single slow host can impose on a sweep
  ("The Tail at Scale" discipline).

Protocol (one ``POST {url}/encode`` per shard)::

    request:  {"protocol": 2,
               "model": ModelConfig.to_jsonable(),
               "mode": "exact" | "padded",
               "padding_tier": int,
               "batch_size": int,
               "state_dtype": "float64" | "float32",
               "sequences": [wire_to_jsonable(ta.to_wire()), ...]}
    response: {"states": [{"digest": <echo of the input sequence digest>,
                           "shape": [L, D],
                           "dtype": "float64" | "float32",
                           "data": base64(little-endian state bytes),
                           "data_digest": sha256(raw bytes)}, ...]}

Failure semantics, by class:

- **Transient transport faults** — connection errors, request deadlines
  (``timeout`` per request, enforced with ``asyncio.wait_for``), HTTP
  5xx, torn/undecodable bodies — are retried up to ``retries`` times
  with exponential backoff and jitter, rerouting away from the replica
  that just failed when an alternative exists.
- **Out-of-order responses** are not faults at all: every state echoes
  its input sequence's digest, and the client reassembles by digest, so
  a service is free to return states in any order.
- **Integrity failures** — a state whose bytes do not hash to its
  ``data_digest``, a wrong shape or dtype, or an echo set that does not
  cover the request — are *rejected immediately*
  (:class:`RemoteEncodeError`): corrupted science must never be retried
  into acceptance.
- HTTP 4xx is a client bug and raises immediately with the service's
  message.

Numerics: the service runs the same deterministic surrogate encoder
(rebuilt from the shipped :class:`ModelConfig`), so ``mode="exact"``
float64 results are **bit-identical** to :class:`LocalBackend`,
``mode="padded"`` stays within :data:`PADDED_TOLERANCE`, and the float32
tier within :data:`FLOAT32_TOLERANCE` — the loopback double
(:mod:`repro.testing.encoder_service`) locks all three in.

The backend also measures per-replica round-trip times and exposes
:meth:`suggest_pipeline_chunk`, which the streaming executor consults so
its chunk size adapts to the *fastest currently-healthy replica's*
latency (amortizing per-request fixed cost on slow links) instead of
assuming local BLAS costs.  All transport accounting lands in a
:class:`TransportStats` — including a per-replica breakdown — that the
sweep report surfaces.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import gzip
import hashlib
import json
import os
import random
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.errors import DeadlineExceededError, ModelError, RemoteEncodeError
from repro.models.backends.base import EncoderBackend
from repro.models.backends.padded import DEFAULT_TIER_WIDTH, PADDED_TOLERANCE
from repro.models.backends.transport import TransportConfig
from repro.models.token_array import TokenArray, TokenSequence, wire_to_jsonable

#: Environment fallback for the replica URLs (CLI/RuntimeConfig take
#: priority); comma-separated values configure a fleet.
REMOTE_URL_ENV = "REPRO_REMOTE_URL"

#: Wire protocol version.  2 added ``state_dtype`` (and the ``dtype``
#: echo on response states); services accept 1 for old clients.
PROTOCOL_VERSION = 2

#: Per-element relative tolerance of the float32 state tier: float64
#: states rounded to float32 on the wire carry at most ~6e-8 relative
#: rounding error per element; 1e-6 leaves margin for accumulation in
#: downstream pooling.  Same opt-in contract as ``PADDED_TOLERANCE``.
FLOAT32_TOLERANCE = 1e-6

DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRIES = 3
#: First backoff delay; doubles per retry up to the cap, ±50% jitter.
DEFAULT_BACKOFF = 0.05
BACKOFF_CAP = 2.0

#: Chunk sizing: aim for chunks worth ~this much service time, stretched
#: to at least LATENCY_AMORTIZATION round-trips' worth of work so fixed
#: network latency never dominates a chunk.
TARGET_CHUNK_SECONDS = 0.25
LATENCY_AMORTIZATION = 4.0
MAX_PIPELINE_CHUNK = 256

#: Transport failures in a row before a replica is quarantined, and how
#: long the quarantine lasts before the replica is probed again.
QUARANTINE_AFTER = 3
QUARANTINE_SECONDS = 5.0

#: Fleet sharding never splits below this many sequences per shard — a
#: shard must carry enough work to amortize its own round trip.
MIN_SHARD_SEQUENCES = 8

#: Hedging engages only after this many measured round trips (a
#: percentile over fewer samples is noise), and never fires earlier than
#: the floor (avoids hedging storms on sub-millisecond loopback links).
MIN_HEDGE_SAMPLES = 4
HEDGE_DELAY_FLOOR = 0.002
RTT_WINDOW = 64


class _TransientError(RemoteEncodeError):
    """Internal marker: a fault the retry loop may re-attempt."""


@dataclasses.dataclass
class ReplicaStats:
    """Per-replica transport accounting (keyed by URL on the parent).

    ``requests`` counts attempts routed to the replica (including retried
    and hedged ones); ``chunks`` only the round trips whose response was
    actually consumed — a hedge loser's completed response increments
    neither ``chunks`` nor the result set.
    """

    requests: int = 0
    chunks: int = 0
    errors: int = 0
    hedges_won: int = 0
    quarantines: int = 0
    round_trip_seconds: float = 0.0

    @property
    def mean_round_trip(self) -> float:
        return self.round_trip_seconds / self.chunks if self.chunks else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = dataclasses.asdict(self)
        out["mean_round_trip"] = self.mean_round_trip
        return out

    def add(self, other: "ReplicaStats") -> None:
        for field in dataclasses.fields(ReplicaStats):
            setattr(
                self, field.name, getattr(self, field.name) + getattr(other, field.name)
            )

    def since(self, baseline: "ReplicaStats") -> "ReplicaStats":
        out = ReplicaStats()
        for field in dataclasses.fields(ReplicaStats):
            setattr(
                out,
                field.name,
                getattr(self, field.name) - getattr(baseline, field.name),
            )
        return out


@dataclasses.dataclass
class TransportStats:
    """Cumulative remote-transport accounting (thread-safe via the backend).

    ``requests`` counts every attempt (including retried and hedged
    ones); ``chunks`` only the round trips whose response was consumed.
    ``round_trip_seconds`` sums consumed round trips, so
    ``mean_round_trip`` is the per-chunk latency the report shows.
    ``bytes_sent``/``bytes_received`` measure **bytes on the wire**
    (after compression), for every attempt that transferred them —
    hedged duplicates really cross the network, so they count here even
    though their responses never reach the results.  ``replicas`` breaks
    routing down per replica URL.
    """

    requests: int = 0
    chunks: int = 0
    retries: int = 0
    timeouts: int = 0
    http_errors: int = 0
    sequences: int = 0
    round_trip_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    connections_opened: int = 0
    connections_reused: int = 0
    hedges: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    quarantines: int = 0
    replicas: Dict[str, ReplicaStats] = dataclasses.field(default_factory=dict)

    _NUMERIC = (
        "requests", "chunks", "retries", "timeouts", "http_errors",
        "sequences", "round_trip_seconds", "bytes_sent", "bytes_received",
        "connections_opened", "connections_reused", "hedges", "hedges_won",
        "hedges_cancelled", "quarantines",
    )

    @property
    def mean_round_trip(self) -> float:
        """Mean seconds per consumed chunk round trip."""
        return self.round_trip_seconds / self.chunks if self.chunks else 0.0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {name: getattr(self, name) for name in self._NUMERIC}
        out["mean_round_trip"] = self.mean_round_trip
        out["replicas"] = {url: rs.to_dict() for url, rs in sorted(self.replicas.items())}
        return out

    def copy(self) -> "TransportStats":
        """Deep-enough copy: per-replica entries are duplicated too."""
        out = dataclasses.replace(
            self, replicas={u: dataclasses.replace(r) for u, r in self.replicas.items()}
        )
        return out

    @classmethod
    def merged(cls, many: Sequence["TransportStats"]) -> "TransportStats":
        out = cls()
        for stats in many:
            for name in cls._NUMERIC:
                setattr(out, name, getattr(out, name) + getattr(stats, name))
            for url, rs in stats.replicas.items():
                out.replicas.setdefault(url, ReplicaStats()).add(rs)
        return out

    def since(self, baseline: "TransportStats") -> "TransportStats":
        """Counters accumulated after ``baseline`` was snapshotted."""
        out = TransportStats()
        for name in self._NUMERIC:
            setattr(out, name, getattr(self, name) - getattr(baseline, name))
        for url, rs in self.replicas.items():
            base = baseline.replicas.get(url)
            delta = rs.since(base) if base is not None else dataclasses.replace(rs)
            if any(
                getattr(delta, f.name) for f in dataclasses.fields(ReplicaStats)
            ):
                out.replicas[url] = delta
        return out


class _Connection:
    """One keep-alive socket, pinned to the event loop that opened it."""

    __slots__ = ("loop", "reader", "writer")

    def __init__(self, loop, reader, writer):
        self.loop = loop
        self.reader = reader
        self.writer = writer

    def abort(self) -> None:
        """Tear the socket down without awaiting (safe cross-loop)."""
        try:
            self.writer.transport.abort()
        except Exception:
            pass  # already broken / loop gone — nothing left to release


class _Replica:
    """One encoding replica: address, connection pool, health, latency.

    Connections are pinned to the asyncio loop that opened them (asyncio
    transports cannot migrate loops), so the pool tracks per-loop open
    counts and :meth:`acquire` only hands out idle connections belonging
    to the *running* loop.  The bound is ``pool_size`` open connections
    per loop — the streaming executor drives everything through one
    persistent :func:`~repro.runtime.pipeline.encode_loop`, so in
    practice that is the per-replica fleet-wide bound.
    """

    def __init__(self, url: str, index: int, pool_size: int):
        split = urlsplit(url)
        self.url = url
        self.index = index
        self.host = split.hostname
        self.port = split.port or 80
        self.path = (split.path.rstrip("/") or "") + "/encode"
        self.pool_size = pool_size
        self.lock = threading.Lock()
        self._idle: List[_Connection] = []
        self._open_counts: Dict[int, int] = {}
        self._loops: Dict[int, object] = {}
        # Health / latency model (guarded by ``lock``).
        self.in_flight = 0
        self.consecutive_failures = 0
        self.quarantined_until = 0.0  # time.monotonic deadline; 0 = healthy
        self.per_seq_ewma: Optional[float] = None
        self.min_rtt: Optional[float] = None

    # -- connection pool ----------------------------------------------

    async def acquire(self, timeout: float) -> Tuple[_Connection, bool]:
        """An idle pooled connection, or a new one within the bound.

        Returns ``(connection, reused)``.  Waits (bounded by ``timeout``)
        when the replica already has ``pool_size`` connections open on
        this loop.
        """
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + timeout
        while True:
            with self.lock:
                self._purge_dead_loops_locked()
                for i, conn in enumerate(self._idle):
                    if conn.loop is loop:
                        self._idle.pop(i)
                        return conn, True
                key = id(loop)
                count = self._open_counts.get(key, 0)
                if count < self.pool_size:
                    self._open_counts[key] = count + 1
                    self._loops[key] = loop
                    break
            if time.monotonic() >= deadline:
                raise _TransientError(
                    f"connection pool to {self.url} exhausted "
                    f"({self.pool_size} connection(s) busy)"
                )
            await asyncio.sleep(0.002)
        try:
            reader, writer = await asyncio.open_connection(self.host, self.port)
        except BaseException:
            with self.lock:
                self._open_counts[id(loop)] -= 1
            raise
        return _Connection(loop, reader, writer), False

    def release(self, conn: _Connection) -> None:
        """Return a healthy keep-alive connection to the pool."""
        with self.lock:
            self._idle.append(conn)

    def discard(self, conn: _Connection) -> None:
        """Close a connection that must not be reused (error, no keep-alive)."""
        conn.abort()
        with self.lock:
            key = id(conn.loop)
            if key in self._open_counts:
                self._open_counts[key] = max(0, self._open_counts[key] - 1)

    def drop_loop(self, loop) -> None:
        """Abort idle connections bound to ``loop`` (it is about to close)."""
        with self.lock:
            keep: List[_Connection] = []
            for conn in self._idle:
                if conn.loop is loop:
                    conn.abort()
                    key = id(loop)
                    self._open_counts[key] = max(0, self._open_counts.get(key, 1) - 1)
                else:
                    keep.append(conn)
            self._idle = keep

    def close_all(self) -> None:
        """Abort every idle connection (backend shutdown)."""
        with self.lock:
            for conn in self._idle:
                conn.abort()
                key = id(conn.loop)
                self._open_counts[key] = max(0, self._open_counts.get(key, 1) - 1)
            self._idle = []

    def _purge_dead_loops_locked(self) -> None:
        alive: List[_Connection] = []
        for conn in self._idle:
            if conn.loop.is_closed():
                conn.abort()
                key = id(conn.loop)
                self._open_counts[key] = max(0, self._open_counts.get(key, 1) - 1)
            else:
                alive.append(conn)
        self._idle = alive
        for key, loop in list(self._loops.items()):
            if getattr(loop, "is_closed", lambda: False)() and not self._open_counts.get(key):
                self._open_counts.pop(key, None)
                self._loops.pop(key, None)

    # -- health / latency ---------------------------------------------

    def available(self, now: Optional[float] = None) -> bool:
        """Not currently quarantined (a lapsed quarantine means: probe me)."""
        now = time.monotonic() if now is None else now
        with self.lock:
            return now >= self.quarantined_until

    def note_ok(self) -> None:
        """A successful attempt: clear the failure streak / quarantine."""
        with self.lock:
            self.consecutive_failures = 0
            self.quarantined_until = 0.0

    def note_failure(self, quarantine_after: int, quarantine_seconds: float) -> bool:
        """Record a transport failure; True when it tripped a quarantine."""
        with self.lock:
            self.consecutive_failures += 1
            now = time.monotonic()
            if (
                self.consecutive_failures >= quarantine_after
                and now >= self.quarantined_until
            ):
                self.quarantined_until = now + quarantine_seconds
                return True
        return False

    def note_rtt(self, rtt: float, n_sequences: int) -> None:
        """Fold a consumed round trip into this replica's latency model."""
        with self.lock:
            per_seq = rtt / max(1, n_sequences)
            if self.per_seq_ewma is None:
                self.per_seq_ewma = per_seq
            else:
                self.per_seq_ewma = 0.7 * self.per_seq_ewma + 0.3 * per_seq
            self.min_rtt = rtt if self.min_rtt is None else min(self.min_rtt, rtt)


class RemoteBackend(EncoderBackend):
    """Ship token sequences to a fleet of HTTP encoding replicas.

    All transport behavior lives on a
    :class:`~repro.models.backends.transport.TransportConfig`; the flat
    ``url``/``timeout``/``retries``/... keyword arguments remain as a
    convenience that builds a single-replica config (so
    ``RemoteBackend("http://host:8077")`` keeps working).

    Args:
        url: a service base URL (``http://host:port``), or a full
            :class:`TransportConfig`; falls back to the
            ``REPRO_REMOTE_URL`` environment variable (comma-separated
            URLs configure a fleet).
        config: explicit :class:`TransportConfig`; mutually exclusive
            with ``url`` and the flat transport kwargs.
        timeout / retries / compression / state_dtype / hedge_after /
            pool_size: single-replica conveniences mapped onto a
            :class:`TransportConfig` (``None`` = that field's default).
        exact: request bit-exact same-length batching on the service
            (``mode="exact"``); ``False`` requests padded tolerance
            tiers.  The backend's *overall* exactness contract also
            requires ``state_dtype="float64"``.
        padding_tier: tier width the service pads within when non-exact.
        backoff_base / backoff_cap: exponential-backoff envelope.
        quarantine_after / quarantine_seconds: failure streak that
            quarantines a replica, and for how long.
        rng: jitter source (tests inject a seeded one).
    """

    name = "remote"

    def __init__(
        self,
        url: Optional[object] = None,
        *,
        config: Optional[TransportConfig] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        compression: Optional[str] = None,
        state_dtype: Optional[str] = None,
        hedge_after: Optional[float] = None,
        pool_size: Optional[int] = None,
        exact: bool = True,
        padding_tier: int = DEFAULT_TIER_WIDTH,
        backoff_base: float = DEFAULT_BACKOFF,
        backoff_cap: float = BACKOFF_CAP,
        target_chunk_seconds: float = TARGET_CHUNK_SECONDS,
        quarantine_after: int = QUARANTINE_AFTER,
        quarantine_seconds: float = QUARANTINE_SECONDS,
        rng: Optional[random.Random] = None,
    ):
        if isinstance(url, TransportConfig):
            if config is not None:
                raise ModelError("pass one TransportConfig, not two")
            config, url = url, None
        if config is not None:
            flat = (url, timeout, retries, compression, state_dtype, hedge_after, pool_size)
            if any(v is not None for v in flat):
                raise ModelError(
                    "transport options belong on the TransportConfig; do not "
                    "pass url/timeout/retries/... alongside config="
                )
        else:
            urls: Tuple[str, ...]
            if url:
                urls = (str(url),)
            else:
                env = os.environ.get(REMOTE_URL_ENV, "")
                urls = tuple(u.strip() for u in env.split(",") if u.strip())
            if not urls:
                raise ModelError(
                    "remote backend needs a service URL: pass url= or a "
                    "TransportConfig, use RuntimeConfig(transport=...), or "
                    f"set ${REMOTE_URL_ENV}"
                )
            try:
                config = TransportConfig(
                    urls=urls,
                    timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
                    retries=DEFAULT_RETRIES if retries is None else retries,
                    compression=compression or "none",
                    state_dtype=state_dtype or "float64",
                    hedge_after=hedge_after,
                    pool_size=pool_size or 4,
                )
            except ValueError as error:
                raise ModelError(str(error)) from None
        self.config = config
        self.url = config.urls[0]  # compat: the (first) replica URL
        self.timeout = config.timeout
        self.retries = config.retries
        #: Batching mode requested of the service ("exact" = same-length
        #: batching, bit-identical on the service side).
        self.exact_mode = bool(exact)
        #: The backend-contract exactness: bit-identical end to end needs
        #: exact batching *and* float64 states on the wire.
        self.exact = self.exact_mode and config.state_dtype == "float64"
        tolerance = 0.0
        if not self.exact_mode:
            tolerance += PADDED_TOLERANCE
        if config.state_dtype == "float32":
            tolerance += FLOAT32_TOLERANCE
        self.tolerance = tolerance if tolerance else None
        self.padding_tier = padding_tier
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.target_chunk_seconds = target_chunk_seconds
        self.quarantine_after = quarantine_after
        self.quarantine_seconds = quarantine_seconds
        self._rng = rng or random.Random()
        self._deadline = None  # optional live sweep budget; see set_deadline
        self.stats = TransportStats()
        self._stats_lock = threading.Lock()
        self._replicas = [
            _Replica(u, i, config.pool_size) for i, u in enumerate(config.urls)
        ]
        # Fleet-wide window of consumed round trips — the hedge delay is
        # a percentile over it.
        self._rtt_samples: Deque[float] = deque(maxlen=RTT_WINDOW)

    # -- description / policy -----------------------------------------

    def set_deadline(self, deadline) -> None:
        """Bound retries, backoff sleeps, and per-attempt timeouts by a
        live sweep budget (:class:`~repro.runtime.faults.Deadline`).

        With the budget spent, the retry loop raises
        :class:`~repro.errors.DeadlineExceededError` instead of burning
        more attempts — the sweep's one deadline reaches the transport.
        """
        self._deadline = deadline

    def _request_timeout(self) -> float:
        """The per-attempt timeout, capped by any live deadline."""
        if self._deadline is None:
            return self.timeout
        return max(0.001, self._deadline.bound(self.timeout))

    @property
    def cache_namespace(self) -> str:
        """Remote results always live in their own cache key space.

        Exact-mode float64 responses are bit-identical to local by
        contract, but the producer is a network service outside this
        process's trust boundary — the same isolation rule PR 3 applied
        to tolerance tiers keeps a misbehaving service from poisoning the
        local/exact namespace through a shared or persistent cache.  The
        float32 tier gets its own suffix for the same reason tiers do.
        """
        space = "remote" if self.exact_mode else "remote+padded"
        if self.config.state_dtype == "float32":
            space += "+f32"
        return space

    def describe(self) -> str:
        mode = (
            "exact"
            if self.exact_mode
            else f"padded tier={self.padding_tier} tol={PADDED_TOLERANCE:g}"
        )
        detail = self.config.describe()
        target = self.url if len(self.config.urls) == 1 else "fleet"
        return f"{self.name} ({mode}, {detail}, {target})"

    def stats_snapshot(self) -> TransportStats:
        """Consistent copy of the cumulative transport counters."""
        with self._stats_lock:
            return self.stats.copy()

    def close(self) -> None:
        """Drop every idle pooled connection (the backend stays usable)."""
        for replica in self._replicas:
            replica.close_all()

    # -- latency-aware chunk sizing ------------------------------------

    def suggest_pipeline_chunk(self, default: int) -> int:
        """Sequences per streaming-executor chunk, from measured RTTs.

        Each chunk is one HTTP round trip (possibly sharded across
        replicas), so the right size balances two pressures: chunks must
        be *long* enough that fixed network latency is amortized (>=
        ``LATENCY_AMORTIZATION`` × the observed RTT floor of useful work)
        and *short* enough that the pipeline still overlaps serialization
        with in-flight encodes.  The estimate follows the **fastest
        currently-healthy replica** — the one routing favors — rather
        than a fleet-global EWMA a straggler would poison.  Until a round
        trip has been measured the executor's own default stands.
        """
        now = time.monotonic()
        best: Optional[Tuple[float, Optional[float]]] = None
        fallback: Optional[Tuple[float, Optional[float]]] = None
        for replica in self._replicas:
            with replica.lock:
                ewma, min_rtt = replica.per_seq_ewma, replica.min_rtt
                quarantined = now < replica.quarantined_until
            if ewma is None or ewma <= 0:
                continue
            candidate = (ewma, min_rtt)
            if fallback is None or ewma < fallback[0]:
                fallback = candidate
            if not quarantined and (best is None or ewma < best[0]):
                best = candidate
        chosen = best or fallback
        if chosen is None:
            return default
        per_seq, min_rtt = chosen
        target = max(
            self.target_chunk_seconds, LATENCY_AMORTIZATION * (min_rtt or 0.0)
        )
        return max(1, min(MAX_PIPELINE_CHUNK, int(target / per_seq)))

    # -- encoding ------------------------------------------------------

    def encode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Synchronous facade over :meth:`aencode_batch`.

        ``asyncio.run`` builds a fresh event loop per call, so pooled
        connections opened here are released before the loop closes —
        keep-alive reuse materializes *within* one call (retries, hedges,
        shards) and, in production, across the streaming executor's
        persistent encode loop.
        """

        async def run() -> List[np.ndarray]:
            try:
                return await self.aencode_batch(
                    encoder, token_lists, batch_size=batch_size
                )
            finally:
                loop = asyncio.get_running_loop()
                for replica in self._replicas:
                    replica.drop_loop(loop)

        return asyncio.run(run())

    async def aencode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Encode one chunk over the fleet; results in input order.

        Empty sequences are answered locally (their embedding is the
        empty ``[0, dim]`` array by definition — no forward pass exists
        to farm out); everything else is split into per-replica shards
        weighted by measured speed and shipped concurrently.
        """
        dim = encoder.config.dim
        results: List[Optional[np.ndarray]] = [None] * len(token_lists)
        pending: List[Tuple[int, TokenArray]] = []
        for i, tokens in enumerate(token_lists):
            ta = TokenArray.coerce(tokens)
            if len(ta):
                pending.append((i, ta))
            else:
                results[i] = np.zeros((0, dim), dtype=np.float64)
        if not pending:
            return results
        shards = self._plan_shards(pending)
        if len(shards) == 1:
            replica, shard = shards[0]
            await self._encode_shard(encoder, replica, shard, batch_size, results, dim)
            return results
        outcomes = await asyncio.gather(
            *(
                self._encode_shard(encoder, replica, shard, batch_size, results, dim)
                for replica, shard in shards
            ),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return results

    async def _encode_shard(
        self,
        encoder,
        replica: _Replica,
        shard: List[Tuple[int, TokenArray]],
        batch_size: int,
        results: List[Optional[np.ndarray]],
        dim: int,
    ) -> None:
        """Ship one shard (preferring ``replica``) and scatter its states."""
        wires = [ta.to_wire() for _, ta in shard]
        digests = [str(w["digest"]) for w in wires]
        body = json.dumps(
            {
                "protocol": PROTOCOL_VERSION,
                "model": encoder.config.to_jsonable(),
                "mode": "exact" if self.exact_mode else "padded",
                "padding_tier": self.padding_tier,
                "batch_size": batch_size,
                "state_dtype": self.config.state_dtype,
                "sequences": [wire_to_jsonable(w) for w in wires],
            }
        ).encode("utf-8")
        if self.config.compression == "gzip":
            body = gzip.compress(body, compresslevel=6)
        response = await self._send_shard(body, len(shard), replica)
        lengths = [len(ta) for _, ta in shard]
        states = _reassemble_states(
            response, digests, lengths, dim, self.config.state_dtype
        )
        for (i, _), state in zip(shard, states):
            results[i] = state

    # -- routing -------------------------------------------------------

    def _pick_replica(self, exclude: Sequence[_Replica] = ()) -> _Replica:
        """The replica routing favors right now.

        Deterministic greedy choice: unexplored replicas (no latency
        sample yet) first, then the lowest in-flight-adjusted per-sequence
        EWMA.  Quarantined replicas are skipped unless *everything* is
        quarantined, in which case the one due back soonest is probed —
        chunks must go somewhere.
        """
        now = time.monotonic()
        candidates = [r for r in self._replicas if r not in exclude]
        if not candidates:
            candidates = list(self._replicas)
        healthy = [r for r in candidates if r.available(now)]
        if not healthy:
            return min(candidates, key=lambda r: (r.quarantined_until, r.index))

        def score(replica: _Replica):
            with replica.lock:
                ewma, in_flight = replica.per_seq_ewma, replica.in_flight
            if ewma is None:
                return (0, in_flight, replica.index)
            return (1, ewma * (1 + in_flight), replica.index)

        return min(healthy, key=score)

    def _plan_shards(
        self, pending: List[Tuple[int, TokenArray]]
    ) -> List[Tuple[_Replica, List[Tuple[int, TokenArray]]]]:
        """Split a chunk into per-replica shards weighted by speed.

        Fast replicas take proportionally more sequences (weight =
        1 / per-sequence EWMA; unmeasured replicas borrow the fastest
        known weight so they get explored).  Shards never shrink below
        :data:`MIN_SHARD_SEQUENCES`, and a single replica — or a chunk
        too small to split — degrades to the single-request path.
        """
        n = len(pending)
        now = time.monotonic()
        healthy = [r for r in self._replicas if r.available(now)]
        if not healthy:
            healthy = [self._pick_replica()]
        max_shards = min(len(healthy), max(1, n // MIN_SHARD_SEQUENCES))
        if max_shards <= 1:
            return [(self._pick_replica(), pending)]
        ewmas = []
        for replica in healthy:
            with replica.lock:
                ewmas.append(replica.per_seq_ewma)
        known = [e for e in ewmas if e]
        fastest = min(known) if known else 1.0
        weights = [1.0 / (e if e else fastest) for e in ewmas]
        ranked = sorted(range(len(healthy)), key=lambda i: (-weights[i], i))
        chosen = ranked[:max_shards]
        sizes = _proportional_sizes(
            n, [weights[i] for i in chosen], MIN_SHARD_SEQUENCES
        )
        shards: List[Tuple[_Replica, List[Tuple[int, TokenArray]]]] = []
        start = 0
        for rank, size in zip(chosen, sizes):
            if size <= 0:
                continue
            shards.append((healthy[rank], pending[start : start + size]))
            start += size
        return shards

    # -- transport -----------------------------------------------------

    async def _send_shard(
        self, body: bytes, n_sequences: int, preferred: _Replica
    ) -> Dict[str, object]:
        """One shard's request with retry, rerouting, and hedging."""
        last_error: Optional[Exception] = None
        failed: Optional[_Replica] = None
        for attempt in range(self.retries + 1):
            if attempt:
                if self._deadline is not None and self._deadline.expired():
                    # The sweep's budget outranks the retry budget: stop
                    # re-attempting and surface the typed deadline error.
                    raise DeadlineExceededError(
                        "fault-policy deadline exceeded after "
                        f"{attempt} remote attempt(s); last error: {last_error}"
                    ) from last_error
                with self._stats_lock:
                    self.stats.retries += 1
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
                )
                # Full jitter in [0.5, 1.5) x delay decorrelates clients
                # hammering a recovering service in lockstep.
                delay *= 0.5 + self._rng.random()
                if self._deadline is not None:
                    delay = self._deadline.bound(delay)
                await asyncio.sleep(delay)
            if attempt == 0:
                replica = preferred
            else:
                # Reroute the retry away from the replica that just
                # failed when an alternative exists.
                replica = self._pick_replica(
                    exclude=(failed,) if failed is not None else ()
                )
            try:
                decoded, rtt, winner = await self._hedged_attempt(replica, body)
            except _TransientError as error:
                last_error = error
                failed = replica
                continue
            self._record_chunk(winner, rtt, n_sequences)
            return decoded
        raise RemoteEncodeError(
            f"remote encode failed after {self.retries + 1} attempt(s) "
            f"across {len(self._replicas)} replica(s): {last_error}"
        ) from last_error

    async def _hedged_attempt(
        self, primary: _Replica, body: bytes
    ) -> Tuple[Dict[str, object], float, _Replica]:
        """One attempt, speculatively duplicated when the primary lags.

        The hedge fires after the configured latency percentile of
        observed round trips; the first task to return an HTTP-200,
        JSON-decodable response wins and the loser is cancelled, so
        exactly one response is ever consumed and hedge results cannot
        be double-counted.  Payload *integrity* (digest echo, state
        shape) is verified only later, on the winner, in
        ``_reassemble_states`` — a decodable-but-corrupt winner fails
        the chunk even if the cancelled loser held a valid payload, and
        a fatal error on the losing attempt is not surfaced when the
        other attempt succeeds.
        """
        delay = self._hedge_delay()
        primary_task = asyncio.ensure_future(self._attempt_on(primary, body))
        if delay is None:
            decoded, rtt = await primary_task
            return decoded, rtt, primary
        done, _ = await asyncio.wait({primary_task}, timeout=delay)
        if primary_task in done:
            decoded, rtt = primary_task.result()
            return decoded, rtt, primary
        alternate = self._pick_replica(exclude=(primary,))
        if alternate is primary:
            decoded, rtt = await primary_task
            return decoded, rtt, primary
        with self._stats_lock:
            self.stats.hedges += 1
        hedge_task = asyncio.ensure_future(self._attempt_on(alternate, body))
        owners = {primary_task: primary, hedge_task: alternate}
        winner, cancelled = await _race(list(owners))
        with self._stats_lock:
            self.stats.hedges_cancelled += cancelled
            if winner is hedge_task:
                self.stats.hedges_won += 1
                self._replica_stats_locked(alternate).hedges_won += 1
        decoded, rtt = winner.result()
        return decoded, rtt, owners[winner]

    async def _attempt_on(
        self, replica: _Replica, body: bytes
    ) -> Tuple[Dict[str, object], float]:
        """One HTTP round trip against one replica, over its pool.

        Raises :class:`_TransientError` for faults the retry loop may
        re-attempt, plain :class:`RemoteEncodeError` for fatal ones.
        Cancellation (a lost hedge race) tears the in-flight connection
        down — a half-read socket must never return to the pool.
        """
        with self._stats_lock:
            self.stats.requests += 1
            self._replica_stats_locked(replica).requests += 1
        with replica.lock:
            replica.in_flight += 1
        conn: Optional[_Connection] = None
        attempt_timeout = self._request_timeout()
        try:
            try:
                conn, reused = await replica.acquire(attempt_timeout)
            except OSError as error:
                # Refused/unroutable before a single byte moved.
                self._note_failure(replica)
                raise _TransientError(f"{replica.url}: {error}") from error
            with self._stats_lock:
                if reused:
                    self.stats.connections_reused += 1
                else:
                    self.stats.connections_opened += 1
            started = time.perf_counter()
            try:
                status, payload, sent, received, keep_alive = await asyncio.wait_for(
                    self._roundtrip(replica, conn, body), timeout=attempt_timeout
                )
            except asyncio.TimeoutError:
                self._note_failure(replica, timeout=True)
                raise _TransientError(
                    f"request deadline ({attempt_timeout:g}s) exceeded at {replica.url}"
                ) from None
            except (OSError, EOFError, ValueError) as error:
                # Connection refused/reset, stale keep-alive EOF, torn
                # reads, unparsable framing — all transient faults.
                self._note_failure(replica)
                raise _TransientError(f"{replica.url}: {error}") from error
            rtt = time.perf_counter() - started
            with self._stats_lock:
                self.stats.bytes_sent += sent
                self.stats.bytes_received += received
            if status >= 500:
                self._note_failure(replica, http_error=True)
                self._finish_conn(replica, conn, keep_alive)
                conn = None
                raise _TransientError(
                    f"{replica.url} answered HTTP {status}: {payload[:200]!r}"
                )
            if status != 200:
                self._finish_conn(replica, conn, keep_alive)
                conn = None
                raise RemoteEncodeError(
                    f"service rejected request (HTTP {status}): {payload[:500]!r}"
                )
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                self._note_failure(replica)
                raise _TransientError(f"torn response body: {error}") from error
            replica.note_ok()
            self._finish_conn(replica, conn, keep_alive)
            conn = None
            return decoded, rtt
        finally:
            if conn is not None:
                replica.discard(conn)
            with replica.lock:
                replica.in_flight -= 1

    async def _roundtrip(
        self, replica: _Replica, conn: _Connection, body: bytes
    ) -> Tuple[int, bytes, int, int, bool]:
        """Write one request, read one response, on a pooled connection.

        Returns ``(status, payload, wire_bytes_sent, wire_bytes_received,
        keep_alive)``.  The request is HTTP/1.1 with keep-alive; both
        Content-Length-delimited and chunked transfer-encoded responses
        are decoded (EOF-delimited bodies work too but mark the
        connection non-reusable).  Gzip response bodies are transparently
        decompressed; byte counts are *wire* bytes in both directions —
        headers, chunk framing, and (compressed) bodies.
        """
        lines = [
            f"POST {replica.path} HTTP/1.1",
            f"Host: {replica.host}:{replica.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: keep-alive",
        ]
        if self.config.compression == "gzip":
            lines.append("Content-Encoding: gzip")
            lines.append("Accept-Encoding: gzip")
        else:
            lines.append("Accept-Encoding: identity")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        conn.writer.write(head + body)
        await conn.writer.drain()
        reader = conn.reader
        status_line = await reader.readline()
        if not status_line:
            raise EOFError("connection closed before status line")
        wire_in = len(status_line)
        parts = status_line.split(None, 2)
        if len(parts) < 2:
            raise ValueError(f"malformed HTTP status line {status_line!r}")
        version = parts[0].decode("latin-1", "replace").upper()
        status = int(parts[1])
        content_length: Optional[int] = None
        chunked = False
        content_encoding = ""
        connection_header = ""
        while True:
            line = await reader.readline()
            wire_in += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-length":
                content_length = int(value)
            elif name == "transfer-encoding" and "chunked" in value.lower():
                chunked = True
            elif name == "content-encoding":
                content_encoding = value.lower()
            elif name == "connection":
                connection_header = value.lower()
        if chunked:
            raw, body_wire = await _read_chunked(reader)
        elif content_length is not None:
            # readexactly raises IncompleteReadError (EOFError) when the
            # body is torn short of the advertised length.
            raw = await reader.readexactly(content_length)
            body_wire = len(raw)
        else:
            raw = await reader.read()
            body_wire = len(raw)
        wire_in += body_wire
        framed = chunked or content_length is not None
        keep_alive = (
            framed
            and "close" not in connection_header
            and (version.endswith("/1.1") or "keep-alive" in connection_header)
        )
        if content_encoding == "gzip":
            try:
                payload = gzip.decompress(raw)
            except Exception as error:
                raise ValueError(f"undecodable gzip response body: {error}") from error
        else:
            payload = raw
        return status, payload, len(head) + len(body), wire_in, keep_alive

    # -- accounting ----------------------------------------------------

    def _replica_stats_locked(self, replica: _Replica) -> ReplicaStats:
        """Per-replica counters; caller holds ``_stats_lock``."""
        return self.stats.replicas.setdefault(replica.url, ReplicaStats())

    def _finish_conn(
        self, replica: _Replica, conn: _Connection, keep_alive: bool
    ) -> None:
        if keep_alive:
            replica.release(conn)
        else:
            replica.discard(conn)

    def _note_failure(
        self, replica: _Replica, *, timeout: bool = False, http_error: bool = False
    ) -> None:
        tripped = replica.note_failure(self.quarantine_after, self.quarantine_seconds)
        with self._stats_lock:
            if timeout:
                self.stats.timeouts += 1
            if http_error:
                self.stats.http_errors += 1
            rs = self._replica_stats_locked(replica)
            rs.errors += 1
            if tripped:
                self.stats.quarantines += 1
                rs.quarantines += 1

    def _record_chunk(self, replica: _Replica, rtt: float, n_sequences: int) -> None:
        """Fold one *consumed* round trip into stats and latency models."""
        with self._stats_lock:
            self.stats.chunks += 1
            self.stats.sequences += n_sequences
            self.stats.round_trip_seconds += rtt
            rs = self._replica_stats_locked(replica)
            rs.chunks += 1
            rs.round_trip_seconds += rtt
            self._rtt_samples.append(rtt)
        replica.note_rtt(rtt, n_sequences)

    def _hedge_delay(self) -> Optional[float]:
        """Seconds before a hedge fires, or ``None`` when hedging is off.

        The delay is the configured percentile of the recent consumed
        round trips, floored so sub-millisecond loopback links do not
        hedge every request.  Hedging needs at least two replicas and
        :data:`MIN_HEDGE_SAMPLES` measurements to engage.
        """
        if self.config.hedge_after is None or len(self._replicas) < 2:
            return None
        with self._stats_lock:
            samples = sorted(self._rtt_samples)
        if len(samples) < MIN_HEDGE_SAMPLES:
            return None
        k = min(len(samples) - 1, int(self.config.hedge_after * len(samples)))
        return max(HEDGE_DELAY_FLOOR, samples[k])


async def _race(tasks: List["asyncio.Task"]) -> Tuple["asyncio.Task", int]:
    """First task to *succeed* wins; losers are cancelled and reaped.

    Returns ``(winner, n_cancelled)``.  When every task fails, the first
    failure is re-raised (hedging must not mask the primary's error
    class).  Losers are awaited after cancellation so their cleanup —
    tearing down half-read connections — finishes before the caller
    proceeds.
    """
    pending = set(tasks)
    winner: Optional[asyncio.Task] = None
    first_error: Optional[BaseException] = None
    while pending and winner is None:
        done, pending = await asyncio.wait(
            pending, return_when=asyncio.FIRST_COMPLETED
        )
        for task in done:
            if task.cancelled():
                continue
            if task.exception() is None:
                winner = task
                break
            if first_error is None:
                first_error = task.exception()
    if winner is None:
        assert first_error is not None
        raise first_error
    cancelled = 0
    losers = [t for t in tasks if t is not winner]
    for loser in losers:
        if not loser.done():
            loser.cancel()
            cancelled += 1
    if losers:
        await asyncio.gather(*losers, return_exceptions=True)
    return winner, cancelled


async def _read_chunked(reader: "asyncio.StreamReader") -> Tuple[bytes, int]:
    """Decode a chunked transfer-encoded body (trailers discarded).

    Returns ``(body, wire_bytes)`` where ``wire_bytes`` includes the
    chunk-size lines, chunk terminators, and trailers — the bytes the
    body actually occupied on the wire.
    """
    parts: List[bytes] = []
    wire = 0
    while True:
        size_line = await reader.readline()
        if not size_line:
            raise EOFError("connection closed inside chunked body")
        wire += len(size_line)
        try:
            size = int(size_line.split(b";", 1)[0].strip(), 16)
        except ValueError:
            raise ValueError(f"malformed chunk size line {size_line!r}") from None
        if size == 0:
            while True:  # trailers, then the final blank line
                line = await reader.readline()
                wire += len(line)
                if line in (b"\r\n", b"\n", b""):
                    break
            return b"".join(parts), wire
        parts.append(await reader.readexactly(size))
        await reader.readexactly(2)  # chunk-terminating CRLF
        wire += size + 2


def _proportional_sizes(n: int, weights: List[float], min_size: int) -> List[int]:
    """Split ``n`` items proportionally to ``weights`` with a floor.

    The caller guarantees ``len(weights) * min_size <= n``, so drift from
    rounding can always be settled against shares above the floor.
    """
    total = sum(weights) or float(len(weights))
    sizes = [max(min_size, int(round(n * w / total))) for w in weights]
    drift = n - sum(sizes)
    order = sorted(range(len(sizes)), key=lambda j: -sizes[j])
    i = 0
    while drift != 0:
        j = order[i % len(order)]
        step = 1 if drift > 0 else -1
        if sizes[j] + step >= min_size:
            sizes[j] += step
            drift -= step
        i += 1
    return sizes


def _reassemble_states(
    response: Dict[str, object],
    digests: List[str],
    lengths: List[int],
    dim: int,
    state_dtype: str = "float64",
) -> List[np.ndarray]:
    """Decode and order response states by their echoed input digests.

    Matching by digest makes response order irrelevant (duplicate inputs
    have identical digests *and* identical states, so any assignment among
    them is correct).  Integrity failures raise :class:`RemoteEncodeError`
    immediately — they are never retried (see module docstring).
    """
    entries = response.get("states")
    if not isinstance(entries, list) or len(entries) != len(digests):
        got = len(entries) if isinstance(entries, list) else type(entries).__name__
        raise RemoteEncodeError(
            f"response covers {got} state(s) for {len(digests)} sequence(s)"
        )
    by_digest: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "digest" not in entry:
            raise RemoteEncodeError("response state entry carries no digest echo")
        by_digest.setdefault(str(entry["digest"]), []).append(entry)
    states: List[np.ndarray] = []
    for digest, length in zip(digests, lengths):
        bucket = by_digest.get(digest)
        if not bucket:
            raise RemoteEncodeError(
                f"response does not cover requested sequence {digest[:12]}…"
            )
        states.append(_decode_state(bucket.pop(), length, dim, state_dtype))
    return states


def _decode_state(
    entry: Dict[str, object], length: int, dim: int, state_dtype: str
) -> np.ndarray:
    try:
        raw = base64.b64decode(str(entry["data"]).encode("ascii"), validate=True)
    except Exception as error:
        raise RemoteEncodeError(f"undecodable state payload: {error}") from error
    expected = entry.get("data_digest")
    if expected is None:
        raise RemoteEncodeError("response state carries no data digest")
    if hashlib.sha256(raw).hexdigest() != expected:
        raise RemoteEncodeError(
            "response state failed its digest check (tampered or torn payload)"
        )
    dtype = str(entry.get("dtype", "float64"))
    if dtype != state_dtype:
        raise RemoteEncodeError(
            f"response state dtype {dtype!r} does not match the requested "
            f"{state_dtype!r} tier (service too old for float32?)"
        )
    shape = entry.get("shape")
    if shape != [length, dim]:
        raise RemoteEncodeError(
            f"response state shape {shape} does not match expected [{length}, {dim}]"
        )
    itemsize = 4 if state_dtype == "float32" else 8
    if len(raw) != length * dim * itemsize:
        raise RemoteEncodeError(
            f"response state carries {len(raw)} bytes for shape "
            f"[{length}, {dim}] {state_dtype}"
        )
    wire_dtype = "<f4" if state_dtype == "float32" else "<f8"
    return (
        np.frombuffer(raw, dtype=wire_dtype).astype(np.float64, copy=True)
        .reshape(length, dim)
    )
