"""Remote encoding over HTTP: the TokenArray wire format on the network.

:class:`RemoteBackend` completes the backend seam PR 3 opened: instead of
running forward passes in-process, it ships serialized sequences — the
JSON form of :meth:`TokenArray.to_wire` payloads, piece strings plus
base64 provenance arrays — in batches to an encoding service and decodes
the returned hidden states.  The shape follows "BERT Meets Relational DB"
(arXiv:2104.14914): the client serializes and aggregates (pure Python,
cheap) while a GPU host runs the contextual encoder (the expensive part),
and Observatory's 8-properties × many-models sweep matrix is exactly the
workload that wants that split.

Protocol (one ``POST {url}/encode`` per chunk, ``Connection: close``)::

    request:  {"protocol": 1,
               "model": ModelConfig.to_jsonable(),
               "mode": "exact" | "padded",
               "padding_tier": int,
               "batch_size": int,
               "sequences": [wire_to_jsonable(ta.to_wire()), ...]}
    response: {"states": [{"digest": <echo of the input sequence digest>,
                           "shape": [L, D],
                           "data": base64(float64 little-endian bytes),
                           "data_digest": sha256(raw bytes)}, ...]}

Failure semantics, by class:

- **Transient transport faults** — connection errors, request deadlines
  (``timeout`` per request, enforced with ``asyncio.wait_for``), HTTP
  5xx, torn/undecodable bodies — are retried up to ``retries`` times
  with exponential backoff and jitter.
- **Out-of-order responses** are not faults at all: every state echoes
  its input sequence's digest, and the client reassembles by digest, so
  a service is free to return states in any order.
- **Integrity failures** — a state whose bytes do not hash to its
  ``data_digest``, a wrong shape, or an echo set that does not cover the
  request — are *rejected immediately* (:class:`RemoteEncodeError`):
  corrupted science must never be retried into acceptance.
- HTTP 4xx is a client bug and raises immediately with the service's
  message.

Numerics: the service runs the same deterministic surrogate encoder
(rebuilt from the shipped :class:`ModelConfig`), so ``mode="exact"``
results are **bit-identical** to :class:`LocalBackend` and
``mode="padded"`` stays within :data:`PADDED_TOLERANCE` — the loopback
double (:mod:`repro.testing.encoder_service`) locks both in.

The backend also measures per-chunk round-trip times and exposes
:meth:`suggest_pipeline_chunk`, which the streaming executor consults so
its chunk size adapts to network latency (amortizing per-request fixed
cost on slow links) instead of assuming local BLAS costs.  All transport
accounting lands in a :class:`TransportStats` the sweep report surfaces.
"""

from __future__ import annotations

import asyncio
import base64
import dataclasses
import hashlib
import json
import os
import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.errors import ModelError, RemoteEncodeError
from repro.models.backends.base import EncoderBackend
from repro.models.backends.padded import DEFAULT_TIER_WIDTH, PADDED_TOLERANCE
from repro.models.token_array import TokenArray, TokenSequence, wire_to_jsonable

#: Environment fallback for the service URL (CLI/RuntimeConfig take priority).
REMOTE_URL_ENV = "REPRO_REMOTE_URL"

#: Wire protocol version; the service rejects mismatches loudly.
PROTOCOL_VERSION = 1

DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRIES = 3
#: First backoff delay; doubles per retry up to the cap, ±50% jitter.
DEFAULT_BACKOFF = 0.05
BACKOFF_CAP = 2.0

#: Chunk sizing: aim for chunks worth ~this much service time, stretched
#: to at least LATENCY_AMORTIZATION round-trips' worth of work so fixed
#: network latency never dominates a chunk.
TARGET_CHUNK_SECONDS = 0.25
LATENCY_AMORTIZATION = 4.0
MAX_PIPELINE_CHUNK = 256


@dataclasses.dataclass
class TransportStats:
    """Cumulative remote-transport accounting (thread-safe via the backend).

    ``requests`` counts every attempt (including retried ones); ``chunks``
    only the successful round trips.  ``round_trip_seconds`` sums
    successful round trips, so ``mean_round_trip`` is the per-chunk
    latency the report shows.
    """

    requests: int = 0
    chunks: int = 0
    retries: int = 0
    timeouts: int = 0
    http_errors: int = 0
    sequences: int = 0
    round_trip_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def mean_round_trip(self) -> float:
        """Mean seconds per successful chunk round trip."""
        return self.round_trip_seconds / self.chunks if self.chunks else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = dataclasses.asdict(self)
        out["mean_round_trip"] = self.mean_round_trip
        return out

    @classmethod
    def merged(cls, many: Sequence["TransportStats"]) -> "TransportStats":
        out = cls()
        for stats in many:
            for field in dataclasses.fields(cls):
                setattr(
                    out,
                    field.name,
                    getattr(out, field.name) + getattr(stats, field.name),
                )
        return out

    def since(self, baseline: "TransportStats") -> "TransportStats":
        """Counters accumulated after ``baseline`` was snapshotted."""
        out = TransportStats()
        for field in dataclasses.fields(TransportStats):
            setattr(
                out,
                field.name,
                getattr(self, field.name) - getattr(baseline, field.name),
            )
        return out


class RemoteBackend(EncoderBackend):
    """Batch token sequences to an HTTP encoding service (see module doc).

    Args:
        url: service base URL (``http://host:port``); falls back to the
            ``REPRO_REMOTE_URL`` environment variable.
        timeout: per-request deadline in seconds.
        retries: additional attempts after the first (0 = fail fast).
        exact: request bit-exact same-length batching on the service
            (``mode="exact"``); ``False`` requests padded tolerance tiers
            and relaxes this backend's contract to ``PADDED_TOLERANCE``.
        padding_tier: tier width the service pads within when non-exact.
        backoff_base / backoff_cap: exponential-backoff envelope.
        rng: jitter source (tests inject a seeded one).
    """

    name = "remote"

    def __init__(
        self,
        url: Optional[str] = None,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        exact: bool = True,
        padding_tier: int = DEFAULT_TIER_WIDTH,
        backoff_base: float = DEFAULT_BACKOFF,
        backoff_cap: float = BACKOFF_CAP,
        target_chunk_seconds: float = TARGET_CHUNK_SECONDS,
        rng: Optional[random.Random] = None,
    ):
        url = url or os.environ.get(REMOTE_URL_ENV)
        if not url:
            raise ModelError(
                "remote backend needs a service URL: pass url=, use "
                f"RuntimeConfig(remote_url=...), or set ${REMOTE_URL_ENV}"
            )
        split = urlsplit(url)
        if split.scheme != "http" or not split.hostname:
            raise ModelError(
                f"remote backend URL must be http://host[:port][/path], got {url!r}"
            )
        if timeout <= 0:
            raise ModelError("remote timeout must be positive")
        if retries < 0:
            raise ModelError("remote retries must be >= 0")
        self.url = url
        self._host = split.hostname
        self._port = split.port or 80
        self._path = (split.path.rstrip("/") or "") + "/encode"
        self.timeout = timeout
        self.retries = retries
        self.exact = bool(exact)
        self.tolerance = None if exact else PADDED_TOLERANCE
        self.padding_tier = padding_tier
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.target_chunk_seconds = target_chunk_seconds
        self._rng = rng or random.Random()
        self.stats = TransportStats()
        self._stats_lock = threading.Lock()
        # Latency model for suggest_pipeline_chunk: EWMA of per-sequence
        # service time and the smallest observed round trip (a proxy for
        # the link's fixed latency floor).
        self._per_seq_rtt: Optional[float] = None
        self._min_rtt: Optional[float] = None

    # -- description / policy -----------------------------------------

    @property
    def cache_namespace(self) -> str:
        """Remote results always live in their own cache key space.

        Exact-mode responses are bit-identical to local by contract, but
        the producer is a network service outside this process's trust
        boundary — the same isolation rule PR 3 applied to tolerance
        tiers keeps a misbehaving service from poisoning the local/exact
        namespace through a shared or persistent cache.
        """
        return "remote" if self.exact else "remote+padded"

    def describe(self) -> str:
        mode = (
            "exact"
            if self.exact
            else f"padded tier={self.padding_tier} tol={self.tolerance:g}"
        )
        return f"{self.name} ({mode}, {self.url})"

    def stats_snapshot(self) -> TransportStats:
        """Consistent copy of the cumulative transport counters."""
        with self._stats_lock:
            return dataclasses.replace(self.stats)

    # -- latency-aware chunk sizing ------------------------------------

    def suggest_pipeline_chunk(self, default: int) -> int:
        """Sequences per streaming-executor chunk, from measured RTTs.

        Each chunk is one HTTP round trip, so the right size balances two
        pressures: chunks must be *long* enough that fixed network latency
        is amortized (>= ``LATENCY_AMORTIZATION`` × the observed RTT
        floor of useful work) and *short* enough that the pipeline still
        overlaps serialization with in-flight encodes.  Until a round
        trip has been measured the executor's own default stands.
        """
        with self._stats_lock:
            per_seq, min_rtt = self._per_seq_rtt, self._min_rtt
        if not per_seq or per_seq <= 0:
            return default
        target = max(
            self.target_chunk_seconds, LATENCY_AMORTIZATION * (min_rtt or 0.0)
        )
        return max(1, min(MAX_PIPELINE_CHUNK, int(target / per_seq)))

    # -- encoding ------------------------------------------------------

    def encode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Synchronous facade over :meth:`aencode_batch`."""
        return asyncio.run(
            self.aencode_batch(encoder, token_lists, batch_size=batch_size)
        )

    async def aencode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        """Ship one chunk over the wire; results in input order.

        Empty sequences are answered locally (their embedding is the empty
        ``[0, dim]`` array by definition — no forward pass exists to farm
        out); everything else rides a single request.
        """
        dim = encoder.config.dim
        results: List[Optional[np.ndarray]] = [None] * len(token_lists)
        pending: List[Tuple[int, TokenArray]] = []
        for i, tokens in enumerate(token_lists):
            ta = TokenArray.coerce(tokens)
            if len(ta):
                pending.append((i, ta))
            else:
                results[i] = np.zeros((0, dim), dtype=np.float64)
        if not pending:
            return results
        wires = [ta.to_wire() for _, ta in pending]
        digests = [str(w["digest"]) for w in wires]
        body = json.dumps(
            {
                "protocol": PROTOCOL_VERSION,
                "model": encoder.config.to_jsonable(),
                "mode": "exact" if self.exact else "padded",
                "padding_tier": self.padding_tier,
                "batch_size": batch_size,
                "sequences": [wire_to_jsonable(w) for w in wires],
            }
        ).encode("utf-8")
        response = await self._request_with_retry(body, n_sequences=len(pending))
        lengths = [len(ta) for _, ta in pending]
        states = _reassemble_states(response, digests, lengths, dim)
        for (i, _), state in zip(pending, states):
            results[i] = state
        return results

    # -- transport -----------------------------------------------------

    async def _request_with_retry(
        self, body: bytes, *, n_sequences: int
    ) -> Dict[str, object]:
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt:
                with self._stats_lock:
                    self.stats.retries += 1
                delay = min(
                    self.backoff_cap, self.backoff_base * (2 ** (attempt - 1))
                )
                # Full jitter in [0.5, 1.5) x delay decorrelates clients
                # hammering a recovering service in lockstep.
                await asyncio.sleep(delay * (0.5 + self._rng.random()))
            with self._stats_lock:
                self.stats.requests += 1
            started = time.perf_counter()
            try:
                status, payload = await asyncio.wait_for(
                    self._post(body), timeout=self.timeout
                )
            except asyncio.TimeoutError:
                with self._stats_lock:
                    self.stats.timeouts += 1
                last_error = RemoteEncodeError(
                    f"request deadline ({self.timeout:g}s) exceeded"
                )
                continue
            except (OSError, EOFError, ValueError) as error:
                # Connection refused/reset, torn reads, unparsable status
                # line — all transient transport faults.
                last_error = error
                continue
            rtt = time.perf_counter() - started
            if status >= 500:
                with self._stats_lock:
                    self.stats.http_errors += 1
                last_error = RemoteEncodeError(
                    f"service error HTTP {status}: {payload[:200]!r}"
                )
                continue
            if status != 200:
                raise RemoteEncodeError(
                    f"service rejected request (HTTP {status}): {payload[:500]!r}"
                )
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                last_error = RemoteEncodeError(f"torn response body: {error}")
                continue
            self._record_success(rtt, n_sequences, len(body), len(payload))
            return decoded
        raise RemoteEncodeError(
            f"remote encode failed after {self.retries + 1} attempt(s) "
            f"to {self.url}: {last_error}"
        ) from last_error

    async def _post(self, body: bytes) -> Tuple[int, bytes]:
        """One HTTP POST over an asyncio stream (one request, then close).

        The request advertises **HTTP/1.0** deliberately: this minimal
        client parses Content-Length- or EOF-delimited bodies only, and
        an HTTP/1.1 request line would license real servers (nginx,
        uvicorn) to answer with chunked transfer encoding, whose framing
        would be read as body bytes.  A chunked response is detected and
        rejected loudly just in case a server ignores the version.
        """
        reader, writer = await asyncio.open_connection(self._host, self._port)
        try:
            head = (
                f"POST {self._path} HTTP/1.0\r\n"
                f"Host: {self._host}:{self._port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split(None, 2)
            if len(parts) < 2:
                raise ValueError(f"malformed HTTP status line {status_line!r}")
            status = int(parts[1])
            content_length: Optional[int] = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
                elif (
                    name.strip().lower() == "transfer-encoding"
                    and "chunked" in value.lower()
                ):
                    raise ValueError(
                        "server answered with chunked transfer encoding, "
                        "which this client does not speak"
                    )
            if content_length is not None:
                # readexactly raises IncompleteReadError (EOFError) when
                # the body is torn short of the advertised length.
                payload = await reader.readexactly(content_length)
            else:
                payload = await reader.read()
            return status, payload
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass  # close errors on an already-broken socket are noise

    def _record_success(
        self, rtt: float, n_sequences: int, sent: int, received: int
    ) -> None:
        with self._stats_lock:
            self.stats.chunks += 1
            self.stats.sequences += n_sequences
            self.stats.round_trip_seconds += rtt
            self.stats.bytes_sent += sent
            self.stats.bytes_received += received
            per_seq = rtt / max(1, n_sequences)
            if self._per_seq_rtt is None:
                self._per_seq_rtt = per_seq
            else:
                self._per_seq_rtt = 0.7 * self._per_seq_rtt + 0.3 * per_seq
            self._min_rtt = rtt if self._min_rtt is None else min(self._min_rtt, rtt)


def _reassemble_states(
    response: Dict[str, object],
    digests: List[str],
    lengths: List[int],
    dim: int,
) -> List[np.ndarray]:
    """Decode and order response states by their echoed input digests.

    Matching by digest makes response order irrelevant (duplicate inputs
    have identical digests *and* identical states, so any assignment among
    them is correct).  Integrity failures raise :class:`RemoteEncodeError`
    immediately — they are never retried (see module docstring).
    """
    entries = response.get("states")
    if not isinstance(entries, list) or len(entries) != len(digests):
        got = len(entries) if isinstance(entries, list) else type(entries).__name__
        raise RemoteEncodeError(
            f"response covers {got} state(s) for {len(digests)} sequence(s)"
        )
    by_digest: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "digest" not in entry:
            raise RemoteEncodeError("response state entry carries no digest echo")
        by_digest.setdefault(str(entry["digest"]), []).append(entry)
    states: List[np.ndarray] = []
    for digest, length in zip(digests, lengths):
        bucket = by_digest.get(digest)
        if not bucket:
            raise RemoteEncodeError(
                f"response does not cover requested sequence {digest[:12]}…"
            )
        states.append(_decode_state(bucket.pop(), length, dim))
    return states


def _decode_state(entry: Dict[str, object], length: int, dim: int) -> np.ndarray:
    try:
        raw = base64.b64decode(str(entry["data"]).encode("ascii"), validate=True)
    except Exception as error:
        raise RemoteEncodeError(f"undecodable state payload: {error}") from error
    expected = entry.get("data_digest")
    if expected is None:
        raise RemoteEncodeError("response state carries no data digest")
    if hashlib.sha256(raw).hexdigest() != expected:
        raise RemoteEncodeError(
            "response state failed its digest check (tampered or torn payload)"
        )
    shape = entry.get("shape")
    if shape != [length, dim]:
        raise RemoteEncodeError(
            f"response state shape {shape} does not match expected [{length}, {dim}]"
        )
    if len(raw) != length * dim * 8:
        raise RemoteEncodeError(
            f"response state carries {len(raw)} bytes for shape [{length}, {dim}]"
        )
    return (
        np.frombuffer(raw, dtype="<f8").astype(np.float64, copy=True)
        .reshape(length, dim)
    )
