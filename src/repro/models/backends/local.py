"""Exact same-length batching — the default backend.

This is the strategy :meth:`Encoder.encode_batch` hard-coded before the
backend seam existed, extracted verbatim: sequences are grouped by exact
token length and stacked into [B, L, D] tensors, so every output is
bit-identical to encoding the sequence alone (attention, layer norm, and
the FFN are independent per sequence, and no padding ever enters a
matmul).  Heterogeneous-length corpora degenerate to batch-size-1 groups
— the throughput cost :class:`~repro.models.backends.padded.PaddedBackend`
exists to recover.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.backends.base import BATCH_MAX_LENGTH, EncoderBackend
from repro.models.token_array import TokenSequence


class LocalBackend(EncoderBackend):
    """Same-length grouping: exact, in-process, the bit-identity baseline."""

    name = "local"
    exact = True

    def __init__(self, *, max_batch_length: int = BATCH_MAX_LENGTH):
        # Past this length the stacked [B, L, L] attention temporaries
        # fall out of cache and batching is a measured slowdown; the
        # cutoff only affects speed, never outputs.
        self.max_batch_length = max_batch_length

    def encode_batch(
        self, encoder, token_lists: Sequence[TokenSequence], batch_size: int = 8
    ) -> List[np.ndarray]:
        results: List[Optional[np.ndarray]] = [None] * len(token_lists)
        by_length: Dict[int, List[int]] = {}
        for i, tokens in enumerate(token_lists):
            if not tokens:
                results[i] = np.zeros((0, encoder.config.dim), dtype=np.float64)
            elif len(tokens) > self.max_batch_length:
                results[i] = encoder.encode(tokens)
            else:
                by_length.setdefault(len(tokens), []).append(i)
        # Batches hold same-length sequences only: padding to a common
        # length is NOT bit-safe (BLAS kernel selection depends on matrix
        # shape); exactness is this backend's contract.
        for indices in by_length.values():
            for start in range(0, len(indices), max(1, batch_size)):
                chunk = indices[start : start + max(1, batch_size)]
                if len(chunk) == 1:
                    results[chunk[0]] = encoder.encode(token_lists[chunk[0]])
                    continue
                states = encoder.forward_batch([token_lists[i] for i in chunk])
                for i, arr in zip(chunk, states):
                    results[i] = arr
        return results
