"""Typed transport configuration for the remote encoder fleet.

:class:`TransportConfig` is the *one* object that describes how encoder
chunks reach a fleet of remote encoding replicas: which replicas exist,
how long a request may take, how failures are retried, whether bodies are
gzip-compressed, which floating-point tier states ride the wire in, when
a speculative hedge fires against a straggler, and how many keep-alive
connections each replica may hold.

It replaces the flat ``remote_url``/``remote_timeout``/``remote_retries``
kwargs that :class:`~repro.runtime.planner.RuntimeConfig` grew in the
first remote-backend iteration — six more ``remote_*`` knobs would have
made that dataclass a junk drawer, and the fleet options only make sense
*together* (a hedge delay without multiple replicas is dead config; a
pool size without keep-alive is meaningless).  The legacy kwargs still
work through a deprecation shim that builds a ``TransportConfig`` and
warns.

The config is a frozen dataclass of primitives, so it pickles across
process-shard boundaries unchanged, and :meth:`to_jsonable` /
:meth:`from_jsonable` give it the same canonical JSON form the other
wire-crossing configs (:class:`~repro.models.config.ModelConfig`) use —
process-shard payloads and service manifests can carry it without
depending on pickle.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple, Union
from urllib.parse import urlsplit

#: Content-encoding tiers the transport speaks.  ``"gzip"`` compresses
#: request and response bodies (and advertises ``Accept-Encoding: gzip``);
#: ``"none"`` ships identity bodies — the safe default for loopback links
#: where CPU is scarcer than bandwidth.
COMPRESSIONS = ("none", "gzip")

#: Floating-point tiers hidden states may ride the wire in.  ``"float64"``
#: is bit-exact; ``"float32"`` halves state bytes at the documented
#: :data:`~repro.models.backends.remote.FLOAT32_TOLERANCE` — the same
#: opt-in tolerance-tier contract the padded backend established.
STATE_DTYPES = ("float64", "float32")

DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRIES = 3
DEFAULT_POOL_SIZE = 4


def _validate_url(url: str) -> str:
    split = urlsplit(url)
    if split.scheme != "http" or not split.hostname:
        raise ValueError(
            f"transport URL must be http://host[:port][/path], got {url!r}"
        )
    return url


@dataclasses.dataclass(frozen=True)
class TransportConfig:
    """How encoder chunks reach the remote encoding fleet.

    Attributes:
        urls: one or more replica base URLs (``http://host:port``).  A
            single URL degrades gracefully to the single-service client;
            several make the backend a fleet client with weighted routing,
            health tracking, and (optionally) hedged requests.  A plain
            string or any iterable of strings is accepted and normalized
            to a tuple.
        timeout: per-request deadline in seconds.
        retries: additional attempts after the first (0 = fail fast);
            retried chunks may be rerouted to a different replica.
        compression: ``"none"`` or ``"gzip"`` — content encoding for
            request *and* response bodies (opt-in; the service only
            compresses when the client advertises it).
        state_dtype: ``"float64"`` (bit-exact) or ``"float32"`` (half the
            state bytes, within the documented tolerance; requires
            ``RuntimeConfig(exact=False)`` — exactness is a promise).
        hedge_after: latency percentile in ``(0, 1)`` after which a
            straggling chunk is speculatively re-sent to another replica
            (e.g. ``0.95`` hedges requests slower than the observed p95
            round trip).  ``None`` disables hedging.  Needs at least two
            replicas and a few measured round trips to engage.
        pool_size: maximum keep-alive connections held per replica.
    """

    urls: Tuple[str, ...]
    timeout: float = DEFAULT_TIMEOUT
    retries: int = DEFAULT_RETRIES
    compression: str = "none"
    state_dtype: str = "float64"
    hedge_after: Optional[float] = None
    pool_size: int = DEFAULT_POOL_SIZE

    def __post_init__(self):
        urls = self.urls
        if isinstance(urls, str):
            urls = (urls,)
        elif isinstance(urls, Iterable):
            urls = tuple(urls)
        else:
            raise ValueError(
                f"urls must be a URL string or an iterable of them, got {urls!r}"
            )
        if not urls:
            raise ValueError("transport needs at least one replica URL")
        for url in urls:
            if not isinstance(url, str):
                raise ValueError(f"replica URL must be a string, got {url!r}")
            _validate_url(url)
        if len(set(urls)) != len(urls):
            raise ValueError(f"duplicate replica URLs: {urls!r}")
        object.__setattr__(self, "urls", urls)
        if not self.timeout > 0:
            raise ValueError("transport timeout must be positive")
        if self.retries < 0:
            raise ValueError("transport retries must be >= 0")
        if self.compression not in COMPRESSIONS:
            raise ValueError(
                f"unknown compression {self.compression!r}; "
                f"expected one of {COMPRESSIONS}"
            )
        if self.state_dtype not in STATE_DTYPES:
            raise ValueError(
                f"unknown state_dtype {self.state_dtype!r}; "
                f"expected one of {STATE_DTYPES}"
            )
        if self.hedge_after is not None and not 0.0 < self.hedge_after < 1.0:
            raise ValueError(
                "hedge_after is a latency percentile in (0, 1), "
                f"got {self.hedge_after!r}"
            )
        if self.pool_size < 1:
            raise ValueError("pool_size must be positive")

    # -- canonical JSON form (process-shard / manifest shipping) -------

    def to_jsonable(self) -> Dict[str, object]:
        """Plain-JSON dict; :meth:`from_jsonable` round-trips it exactly."""
        out = dataclasses.asdict(self)
        out["urls"] = list(self.urls)
        return out

    @classmethod
    def from_jsonable(cls, payload: Union[Dict[str, object], "TransportConfig"]) -> "TransportConfig":
        """Rebuild (and re-validate) a config from :meth:`to_jsonable` output."""
        if isinstance(payload, cls):
            return payload
        if not isinstance(payload, dict):
            raise ValueError(
                f"transport payload must be a dict, got {type(payload).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown transport config keys: {sorted(unknown)}")
        if "urls" not in payload:
            raise ValueError("transport payload is missing 'urls'")
        kwargs = dict(payload)
        urls = kwargs.pop("urls")
        if not isinstance(urls, (list, tuple)) and not isinstance(urls, str):
            raise ValueError(f"transport 'urls' must be a list, got {urls!r}")
        return cls(urls=tuple(urls) if not isinstance(urls, str) else (urls,), **kwargs)

    def describe(self) -> str:
        """Short human rendering for backend descriptions and reports."""
        parts = [f"{len(self.urls)} replica" + ("s" if len(self.urls) != 1 else "")]
        if self.compression != "none":
            parts.append(self.compression)
        if self.state_dtype != "float64":
            parts.append(self.state_dtype)
        if self.hedge_after is not None:
            parts.append(f"hedge@p{round(self.hedge_after * 100)}")
        return ", ".join(parts)
