"""Model registry: name -> factory.

``load_model("bert")`` returns a fresh surrogate; :func:`register_model`
is the extension point for analyzing new models with the framework (mirrors
the paper's extensibility claim).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ModelError
from repro.models.base import EmbeddingModel
from repro.models import zoo

ModelFactory = Callable[[], EmbeddingModel]

# The paper's two model categories; order matches the figures' legend order.
LANGUAGE_MODELS = ("bert", "roberta", "t5")
TABLE_MODELS = ("turl", "doduo", "tapas", "tabert", "tapex", "taptap")

_REGISTRY: Dict[str, ModelFactory] = {
    "bert": zoo.build_bert,
    "roberta": zoo.build_roberta,
    "t5": zoo.build_t5,
    "turl": zoo.build_turl,
    "doduo": zoo.build_doduo,
    "tapas": zoo.build_tapas,
    "tabert": zoo.build_tabert,
    "tapex": zoo.build_tapex,
    "taptap": zoo.build_taptap,
}


def available_models() -> List[str]:
    """Registered model names (language models first, paper order)."""
    builtin = [n for n in LANGUAGE_MODELS + TABLE_MODELS if n in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(builtin))
    return builtin + extras


def load_model(name: str, *, backend=None) -> EmbeddingModel:
    """Instantiate a registered model by name.

    ``backend`` optionally selects the encoder batching strategy — a
    :class:`~repro.models.backends.EncoderBackend` instance or registered
    backend name (``"local"``/``"padded"``).  Only models that expose
    ``set_backend`` (the surrogates) accept one; passing a backend to a
    custom registered model without that hook is an error rather than a
    silent no-op.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    model = factory()
    if backend is not None:
        setter = getattr(model, "set_backend", None)
        if setter is None:
            raise ModelError(
                f"model {name!r} does not support encoder backends"
            )
        setter(backend)
    return model


def register_model(name: str, factory: ModelFactory, *, overwrite: bool = False) -> None:
    """Register a new model factory under ``name``.

    This is the public extension point: implement
    :class:`~repro.models.base.EmbeddingModel` for your model and register
    it to run any Observatory property against it.
    """
    if name in _REGISTRY and not overwrite:
        raise ModelError(f"model {name!r} already registered")
    _REGISTRY[name] = factory


def unregister_model(name: str) -> None:
    """Remove a registered model (primarily for tests)."""
    _REGISTRY.pop(name, None)
