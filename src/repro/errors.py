"""Exception hierarchy for the Observatory reproduction.

All library errors derive from :class:`ObservatoryError` so callers can
catch framework failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ObservatoryError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ObservatoryError):
    """A table or column schema is malformed or inconsistent with its data."""


class TableError(ObservatoryError):
    """A table operation received invalid arguments (bad index, ragged rows)."""


class TokenizationError(ObservatoryError):
    """Text could not be tokenized (e.g. empty vocabulary)."""


class SerializationError(ObservatoryError):
    """A table could not be serialized within the model input limit."""


class ModelError(ObservatoryError):
    """An embedding model was misconfigured or misused."""


class RemoteEncodeError(ModelError):
    """The remote encoding service failed (deadline, 5xx, bad payload)."""


class UnsupportedLevelError(ModelError):
    """The model does not expose the requested level of embeddings."""

    def __init__(self, model_name: str, level: str):
        self.model_name = model_name
        self.level = level
        super().__init__(
            f"model {model_name!r} does not expose {level!r}-level embeddings"
        )


class MeasureError(ObservatoryError):
    """A measure received degenerate input (e.g. fewer than two samples)."""


class DatasetError(ObservatoryError):
    """A dataset generator or loader received invalid parameters."""


class ColumnIndexError(ObservatoryError):
    """The persistent column-embedding index was misused or misconfigured."""


class PropertyConfigError(ObservatoryError):
    """A property run was configured inconsistently."""


class SweepError(ObservatoryError):
    """A sweep could not execute (scheduling, worker, or budget failure)."""


class CellExecutionError(SweepError):
    """One (model, property) cell raised while characterizing.

    Raised under ``on_error="abort"``; under ``on_error="degrade"`` the
    same condition is recorded as a
    :class:`~repro.runtime.sweep.CellFailure` instead.  The original
    exception is always chained as ``__cause__``.
    """

    def __init__(self, model_name: str, property_name: str, message: str):
        self.model_name = model_name
        self.property_name = property_name
        super().__init__(f"cell {model_name}/{property_name} failed: {message}")


class CellPoisonedError(SweepError):
    """A cell (or its work group) crashed every worker that touched it."""


class WorkerCrashError(SweepError):
    """Sweep worker processes died faster than crash salvage could retry."""


class DeadlineExceededError(SweepError):
    """The sweep's :class:`~repro.runtime.faults.FaultPolicy` wall-clock
    deadline expired before the work completed."""


class ServiceError(ObservatoryError):
    """The characterization service failed to bind, serve, or shut down."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded admission queue is full.

    Maps to HTTP 429 on the wire; ``retry_after`` (seconds) rides along
    as the ``Retry-After`` header so clients back off an informed amount
    instead of guessing.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class JournalError(ObservatoryError):
    """The write-ahead sweep journal is missing, corrupt, or misused."""


class RequestJournalError(JournalError):
    """The service's request journal is missing, corrupt, or misused."""


class StaleJournalError(JournalError):
    """A journal's plan fingerprint does not match the requested sweep.

    Resuming it would silently mix results computed under different
    models, corpora, sizes, seed, or backend numerics — refuse instead.
    """
