"""Exception hierarchy for the Observatory reproduction.

All library errors derive from :class:`ObservatoryError` so callers can
catch framework failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ObservatoryError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ObservatoryError):
    """A table or column schema is malformed or inconsistent with its data."""


class TableError(ObservatoryError):
    """A table operation received invalid arguments (bad index, ragged rows)."""


class TokenizationError(ObservatoryError):
    """Text could not be tokenized (e.g. empty vocabulary)."""


class SerializationError(ObservatoryError):
    """A table could not be serialized within the model input limit."""


class ModelError(ObservatoryError):
    """An embedding model was misconfigured or misused."""


class RemoteEncodeError(ModelError):
    """The remote encoding service failed (deadline, 5xx, bad payload)."""


class UnsupportedLevelError(ModelError):
    """The model does not expose the requested level of embeddings."""

    def __init__(self, model_name: str, level: str):
        self.model_name = model_name
        self.level = level
        super().__init__(
            f"model {model_name!r} does not expose {level!r}-level embeddings"
        )


class MeasureError(ObservatoryError):
    """A measure received degenerate input (e.g. fewer than two samples)."""


class DatasetError(ObservatoryError):
    """A dataset generator or loader received invalid parameters."""


class ColumnIndexError(ObservatoryError):
    """The persistent column-embedding index was misused or misconfigured."""


class PropertyConfigError(ObservatoryError):
    """A property run was configured inconsistently."""
