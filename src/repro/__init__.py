"""Observatory: characterizing embeddings of relational tables.

A from-scratch reproduction of the VLDB 2023 paper "Observatory:
Characterizing Embeddings of Relational Tables" (Cong, Hulsebos, Sun,
Groth, Jagadish): eight primitive properties with quantitative measures,
nine surrogate embedding models, five synthetic dataset suites, and the
characterization framework tying them together.

Quickstart::

    from repro import Observatory

    obs = Observatory(seed=0)
    result = obs.characterize("bert", "row_order_insignificance")
    print(result.distribution("column/cosine"))

    # A whole matrix through the batched/cached runtime:
    sweep = obs.sweep(["bert", "t5"], ["row_order_insignificance",
                                       "sample_fidelity"])
    print(sweep.cache_stats)
"""

from repro.core.framework import DatasetSizes, Observatory
from repro.core.levels import EmbeddingLevel
from repro.index import ColumnIndex
from repro.core.registry import available_properties, load_property, register_property
from repro.core.results import DistributionSummary, PropertyResult, SkippedCell
from repro.models.registry import available_models, load_model, register_model
from repro.relational.table import Table
from repro.runtime import RuntimeConfig, SweepResult, TransportConfig
from repro.service import CharacterizationService, ServiceClient, ServiceConfig

__version__ = "1.2.0"

__all__ = [
    "CharacterizationService",
    "ServiceClient",
    "ServiceConfig",
    "ColumnIndex",
    "Observatory",
    "DatasetSizes",
    "EmbeddingLevel",
    "PropertyResult",
    "DistributionSummary",
    "RuntimeConfig",
    "TransportConfig",
    "SkippedCell",
    "SweepResult",
    "Table",
    "available_models",
    "load_model",
    "register_model",
    "available_properties",
    "load_property",
    "register_property",
    "__version__",
]
