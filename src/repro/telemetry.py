"""Thread-local phase timing for characterization cells.

A sweep cell's wall time splits into three phases: *serialize* (tables →
token sequences, pure Python), *encode* (transformer forward passes,
BLAS), and *aggregate* (token states → level embeddings, numpy).  The
model layer brackets those phases with :func:`span`; the sweep engines
call :func:`start_cell` before running a cell and read the accumulated
:class:`CellTimings` after, attributing every span on that thread (plus
any background encode work explicitly credited via ``timings=``) to the
cell.  That is what makes the known heterogeneous_context ~3x skew — and
any future hot cell — visible in ``render_sweep`` instead of folklore.

This module is deliberately dependency-free (stdlib only): it is imported
by both the model layer and the runtime, below either in the layering.
When no cell is active, spans are no-ops.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from typing import Dict, Iterator, Optional

PHASES = ("serialize", "encode", "aggregate")

_tls = threading.local()

# One CellTimings can be credited from several threads at once: the
# owning cell's thread plus concurrent background encode batches it
# submitted.  add() is a read-modify-write, so it takes a (module-wide,
# uncontended) lock rather than losing updates under interleaving.
_add_lock = threading.Lock()


@dataclasses.dataclass
class CellTimings:
    """Accumulated per-phase seconds for one characterization cell."""

    serialize_seconds: float = 0.0
    encode_seconds: float = 0.0
    aggregate_seconds: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
        field = f"{phase}_seconds"
        with _add_lock:
            setattr(self, field, getattr(self, field) + seconds)

    def to_dict(self) -> Dict[str, float]:
        return {f"{phase}_seconds": getattr(self, f"{phase}_seconds") for phase in PHASES}


def start_cell() -> CellTimings:
    """Begin attributing spans on this thread to a fresh timings record."""
    timings = CellTimings()
    _tls.current = timings
    return timings


def stop_cell() -> Optional[CellTimings]:
    """Detach and return this thread's timings record (None if absent)."""
    timings = getattr(_tls, "current", None)
    _tls.current = None
    return timings


def current() -> Optional[CellTimings]:
    """The timings record spans on this thread accumulate into, if any."""
    return getattr(_tls, "current", None)


def add(phase: str, seconds: float, timings: Optional[CellTimings] = None) -> None:
    """Credit ``seconds`` of ``phase`` to ``timings`` (default: this thread's).

    The explicit ``timings`` form is how background encode threads credit
    work to the *submitting* cell: the executor captures :func:`current`
    at submission time and passes it into the encode closure.
    """
    target = timings if timings is not None else current()
    if target is not None:
        target.add(phase, seconds)


@contextlib.contextmanager
def span(phase: str, timings: Optional[CellTimings] = None) -> Iterator[None]:
    """Time a block into ``phase``; no-op when no cell is active."""
    target = timings if timings is not None else current()
    if target is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        target.add(phase, time.perf_counter() - started)
