"""Principal component analysis via SVD.

Figures 6 and 8 of the paper project the 720 permutation variants of each
column embedding to two dimensions to visualize the anisotropic spread of
T5 embeddings against BERT's isotropic cloud.  This PCA is implemented on
the thin SVD of the centered sample matrix, so it works when n < d (720
samples, 768 dims) without forming a covariance matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MeasureError


class PCA:
    """Fit/transform PCA with explained-variance accounting."""

    def __init__(self, n_components: int = 2):
        if n_components < 1:
            raise MeasureError("n_components must be positive")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # [k, d]
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, samples: np.ndarray) -> "PCA":
        """Fit on an [n, d] sample matrix."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[0] < 2:
            raise MeasureError("PCA needs an [n>=2, d] sample matrix")
        n, d = samples.shape
        k = min(self.n_components, n - 1, d)
        if k < 1:
            raise MeasureError("not enough samples for one component")
        self.mean_ = samples.mean(axis=0)
        centered = samples - self.mean_
        # Thin SVD: centered = U S Vt; principal axes are rows of Vt.
        _, singular, vt = np.linalg.svd(centered, full_matrices=False)
        variances = (singular ** 2) / (n - 1)
        total = variances.sum()
        self.components_ = vt[:k]
        self.explained_variance_ = variances[:k]
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, samples: np.ndarray) -> np.ndarray:
        """Project samples onto the fitted components, shape [n, k]."""
        if self.components_ is None:
            raise MeasureError("PCA is not fitted")
        samples = np.asarray(samples, dtype=np.float64)
        return (samples - self.mean_) @ self.components_.T

    def fit_transform(self, samples: np.ndarray) -> np.ndarray:
        return self.fit(samples).transform(samples)


def spread_ratio(projected: np.ndarray) -> float:
    """Ratio of std along PC1 to std along PC2 of a 2-D projection.

    Quantifies the "stretch" Figures 6/8 show: isotropic clouds give values
    near 1, direction-dominated clouds (T5) give large values.
    """
    projected = np.asarray(projected, dtype=np.float64)
    if projected.ndim != 2 or projected.shape[1] < 2:
        raise MeasureError("spread ratio needs a 2-D projection")
    stds = projected.std(axis=0, ddof=1)
    if stds[1] < 1e-18:
        return float("inf")
    return float(stds[0] / stds[1])
