"""Full characterization report.

The paper's Section 5 is a comprehensive analysis: every model against every
applicable property.  :func:`full_characterization` runs that matrix through
the Observatory facade (skipping model/property combinations outside the
paper's Table 2 scope) and renders a single markdown document with the
headline statistic per cell — the artifact a practitioner would skim before
choosing a model.  :func:`render_sweep` renders the same kind of matrix
from a structured :class:`~repro.runtime.sweep.SweepResult` (the output of
``Observatory.sweep``), including skipped cells and cache accounting.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.framework import Observatory
from repro.core.results import PropertyResult
from repro.errors import ObservatoryError
from repro.runtime.sweep import SweepResult

# Headline statistic to show per property (distribution key or scalar key).
_HEADLINES = {
    "row_order_insignificance": ("distribution", "column/cosine", "median"),
    "column_order_insignificance": ("distribution", "column/cosine", "median"),
    "join_relationship": ("scalar", "spearman/multiset_jaccard", None),
    "functional_dependencies": ("scalar", "mean_s2/fd", None),
    "sample_fidelity": ("distribution", "ratio_0.25/fidelity", "median"),
    "perturbation_robustness": ("distribution", "schema-abbreviation/cosine", "median"),
    "heterogeneous_context": ("distribution", "non_textual/entire_table", "median"),
}

# Paper Table 2 exclusions (model not in scope for property).
_EXCLUSIONS = {
    "row_order_insignificance": {"taptap"},
    "column_order_insignificance": set(),
    "join_relationship": {"turl", "taptap"},
    "functional_dependencies": {"turl", "tabert", "taptap"},
    "sample_fidelity": {"taptap"},
    "perturbation_robustness": {"turl", "taptap"},
    "heterogeneous_context": {"turl", "taptap"},
}


def headline_value(result: PropertyResult, property_name: str) -> Optional[float]:
    """The report's single number for a result, per :data:`_HEADLINES`."""
    kind, key, field = _HEADLINES[property_name]
    if kind == "scalar":
        return result.scalars.get(key)
    stats = result.distributions.get(key)
    if stats is None:
        return None
    return getattr(stats, field)


def full_characterization(
    observatory: Observatory,
    *,
    models: Sequence[str],
    properties: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Optional[float]]]:
    """Run the model x property matrix; returns model -> property -> value.

    Cells outside the paper's scope (Table 2) or unsupported by the model's
    exposed levels are None.
    """
    properties = list(properties or _HEADLINES)
    matrix: Dict[str, Dict[str, Optional[float]]] = {}
    for model_name in models:
        row: Dict[str, Optional[float]] = {}
        for property_name in properties:
            if property_name not in _HEADLINES:
                raise ObservatoryError(f"no headline defined for {property_name!r}")
            if model_name in _EXCLUSIONS.get(property_name, set()):
                row[property_name] = None
                continue
            try:
                result = observatory.characterize(model_name, property_name)
            except ObservatoryError:
                row[property_name] = None
                continue
            row[property_name] = headline_value(result, property_name)
        matrix[model_name] = row
    return matrix


_SHORT = {
    "row_order_insignificance": "P1 row",
    "column_order_insignificance": "P2 col",
    "join_relationship": "P3 join",
    "functional_dependencies": "P4 fd",
    "sample_fidelity": "P5 sample",
    "perturbation_robustness": "P7 perturb",
    "heterogeneous_context": "P8 context",
}


def render_markdown(matrix: Dict[str, Dict[str, Optional[float]]]) -> str:
    """Markdown table of the characterization matrix."""
    if not matrix:
        raise ObservatoryError("empty characterization matrix")
    properties = list(next(iter(matrix.values())))
    header = "| model | " + " | ".join(_SHORT.get(p, p) for p in properties) + " |"
    rule = "|" + "|".join(["---"] * (len(properties) + 1)) + "|"
    lines = [header, rule]
    for model_name, row in matrix.items():
        cells = [model_name]
        for p in properties:
            value = row[p]
            cells.append("—" if value is None else f"{value:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def sweep_matrix(sweep: SweepResult) -> Dict[str, Dict[str, Optional[float]]]:
    """Headline-value matrix (model -> property -> value) of a sweep.

    Cells the sweep skipped — or whose property has no headline statistic
    registered — render as ``None``, same as out-of-scope cells in
    :func:`full_characterization`.
    """
    if not sweep.cells and not sweep.skipped:
        raise ObservatoryError("empty sweep result")
    model_names = sweep.model_names or sorted(
        {s.model_name for s in sweep.skipped}
    )
    property_names = sweep.property_names or sorted(
        {s.property_name for s in sweep.skipped}
    )
    matrix: Dict[str, Dict[str, Optional[float]]] = {}
    for model_name in model_names:
        row: Dict[str, Optional[float]] = {}
        for property_name in property_names:
            result = sweep.get(model_name, property_name)
            if result is None or property_name not in _HEADLINES:
                row[property_name] = None
            else:
                row[property_name] = headline_value(result, property_name)
        matrix[model_name] = row
    return matrix


def render_sweep(sweep: SweepResult) -> str:
    """Markdown rendering of a sweep: matrix, skipped cells, runtime stats,
    encoder backend/pipeline accounting, work-stealing scheduler
    utilization (process sweeps), and the slowest cells."""
    lines = [render_markdown(sweep_matrix(sweep))]
    if sweep.skipped:
        lines.append("")
        lines.append("Skipped cells:")
        for skip in sweep.skipped:
            lines.append(
                f"- {skip.model_name} / {skip.property_name}: {skip.reason}"
            )
    if sweep.failures:
        lines.append("")
        lines.append("Degraded cells (recorded, not re-run — see --resume):")
        for failure in sweep.failures:
            lines.append(
                f"- {failure.model_name} / {failure.property_name}: "
                f"{failure.error}: {failure.message}"
            )
    lines.append("")
    ran = len(sweep.cells) - sweep.replayed
    lines.append(
        f"Ran {ran} cells in {sweep.seconds:.2f}s "
        f"on {sweep.workers} {sweep.execution} worker(s); "
        f"encoder backend: {sweep.backend}."
    )
    if sweep.replayed:
        lines.append(
            f"Replayed {sweep.replayed} completed cell(s) from the sweep "
            f"journal; only the remainder was dispatched."
        )
    if sweep.cache_stats is not None:
        stats = sweep.cache_stats
        lines.append(
            f"Embedding cache: {stats.hits} hits / {stats.requests} requests "
            f"({stats.hit_rate:.1%} hit rate)."
        )
        if stats.evictions or stats.disk_evictions or stats.disk_drops:
            lines.append(
                f"Cache eviction: {stats.evictions} memory, "
                f"{stats.disk_evictions} disk (size/age), "
                f"{stats.disk_drops} corrupt entries dropped."
            )
    if sweep.pipeline is not None:
        pipe = sweep.pipeline
        lines.append(
            f"Encode pipeline: {pipe.batches} async batches "
            f"({pipe.sequences} sequences), {pipe.encode_seconds:.2f}s encoding, "
            f"{pipe.overlap_ratio:.1%} overlapped with CPU work."
        )
    if sweep.padding is not None:
        pad = sweep.padding
        lines.append(
            f"Padded batching: {pad.padded_batches} mixed-length batches "
            f"({pad.sequences} sequences), {pad.waste_ratio:.1%} padding waste."
        )
    if sweep.transport is not None:
        net = sweep.transport
        lines.append(
            f"Remote transport: {net.chunks} chunks ({net.sequences} sequences) "
            f"over {net.requests} requests, {net.retries} retried "
            f"({net.timeouts} timeouts, {net.http_errors} 5xx); "
            f"mean round-trip {net.mean_round_trip * 1000.0:.1f}ms, "
            f"{net.bytes_sent} B out / {net.bytes_received} B in."
        )
        lines.append(
            f"Fleet: {net.connections_opened} connections opened, "
            f"{net.connections_reused} reused; {net.hedges} hedges "
            f"({net.hedges_won} won, {net.hedges_cancelled} cancelled), "
            f"{net.quarantines} quarantines."
        )
        for url, rep in sorted(net.replicas.items()):
            lines.append(
                f"- {url}: {rep.chunks} chunks / {rep.requests} requests, "
                f"{rep.errors} errors, {rep.hedges_won} hedges won, "
                f"{rep.quarantines} quarantines, "
                f"mean round-trip {rep.mean_round_trip * 1000.0:.1f}ms"
            )
    if sweep.scheduler is not None:
        sched = sweep.scheduler
        lines.append(
            f"Scheduler: {sched.groups} work groups, "
            f"{sched.redispatches} straggler re-dispatches "
            f"({sched.duplicates_discarded} duplicates discarded), "
            f"{sched.crashes} worker crashes "
            f"({sched.salvaged_groups} groups salvaged)."
        )
        for worker in sched.workers:
            flags = " [crashed]" if worker.crashed else ""
            lines.append(
                f"- worker {worker.worker_id}: {worker.busy_fraction:.1%} busy "
                f"({worker.busy_seconds:.2f}s busy / "
                f"{worker.idle_seconds:.2f}s idle), "
                f"{worker.groups} groups / {worker.cells} cells, "
                f"{worker.steals} steals{flags}"
            )
    slowest = sweep.slowest(3)
    if slowest:
        lines.append("")
        lines.append("Slowest cells (encode/aggregate split):")
        for cell in slowest:
            lines.append(
                f"- {cell.model_name} / {cell.property_name}: "
                f"{cell.seconds:.2f}s (encode {cell.encode_seconds:.2f}s, "
                f"aggregate {cell.aggregate_seconds:.2f}s)"
            )
    return "\n".join(lines)


def render_index(
    info: Dict[str, object],
    *,
    cache_stats=None,
    results: Optional[Sequence[tuple]] = None,
) -> str:
    """Plain-text rendering of a column-index summary for CLI/CI logs.

    ``info`` is :meth:`repro.index.ColumnIndex.describe` output;
    ``results`` optionally carries ``(query_label, hits)`` tuples where
    ``hits`` is the ``(key, score)`` list a query returned.
    """
    lines = [
        f"Column index at {info['directory']}",
        (
            f"  {info['rows']} rows x {info['dim']} dims in "
            f"{info['shards']} shard(s), generation {info['generation']}"
        ),
        (
            f"  partitions: {info['partitions'] or 'unbuilt'} "
            f"(budget {info['partition_budget']}); "
            f"prune modes: {', '.join(info['prune_modes'])}"
        ),
        (
            f"  guarantees: prune=off is bit-identical to brute force; "
            f"probe recall floor {info['probe_recall_floor']}"
        ),
    ]
    if info.get("dropped_shards") or info.get("swept_files"):
        lines.append(
            f"  recovery: dropped {info['dropped_shards']} corrupt shard(s), "
            f"swept {info['swept_files']} stale file(s)"
        )
    if cache_stats is not None:
        lines.append(
            f"  embedding cache: {cache_stats.hits} hits / "
            f"{cache_stats.hits + cache_stats.misses} requests"
        )
    for label, hits in results or ():
        lines.append(f"  query {label}:")
        for key, score in hits:
            lines.append(f"    {score:+.6f}  {key}")
    return "\n".join(lines)


def render_service(stats: Dict[str, object]) -> str:
    """Plain-text rendering of a service stats snapshot for CLI/CI logs.

    ``stats`` is :meth:`repro.service.CharacterizationService.stats_snapshot`
    output (also what ``GET /v1/stats`` serves).
    """
    jobs = dict(stats.get("jobs") or {})
    cache = dict(stats.get("cache") or {})
    index = dict(stats.get("index") or {})
    lines = [
        "Characterization service",
        (
            f"  jobs: {jobs.get('done', 0)} done, "
            f"{jobs.get('failed', 0)} failed, "
            f"{jobs.get('running', 0)} running, "
            f"{jobs.get('queued', 0)} queued "
            f"(queue {stats.get('queue_depth', 0)}/"
            f"{stats.get('queue_limit', 0)}"
            f"{', held' if stats.get('held') else ''})"
        ),
        (
            f"  result cache: {cache.get('hits', 0)} hits, "
            f"{cache.get('entries', 0)}/{cache.get('limit', 0)} entries; "
            f"{stats.get('deduplicated', 0)} deduplicated, "
            f"{stats.get('rejected', 0)} rejected (429)"
        ),
        (
            f"  planes: {stats.get('encode_requests', 0)} encode request(s), "
            f"{stats.get('tables', 0)} uploaded table(s), "
            f"{index.get('open_handles', 0)} index handle(s) "
            f"({index.get('reopens', 0)} generation reopen(s))"
        ),
        f"  backend: {stats.get('backend', '?')}",
    ]
    if stats.get("replayed_requests"):
        lines.append(
            f"  replayed {stats['replayed_requests']} journaled request(s) "
            f"from a prior run"
        )
    if stats.get("state_dir"):
        lines.append(f"  state dir: {stats['state_dir']}")
    return "\n".join(lines)
