"""Analysis utilities: PCA projections and report rendering."""

from repro.analysis.pca import PCA
from repro.analysis.reporting import (
    format_matrix,
    format_value_table,
    render_boxplot,
    render_histogram,
)

__all__ = [
    "PCA",
    "format_matrix",
    "format_value_table",
    "render_boxplot",
    "render_histogram",
]
