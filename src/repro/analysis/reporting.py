"""Plain-text rendering of experiment outputs.

The benchmark harness is matplotlib-free; figures are reported as the
numeric series behind them plus lightweight ASCII renderings (box plots and
histograms) so experiment output remains human-scannable in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.measures.stats import DistributionStats, summarize
from repro.errors import MeasureError


def format_value_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str],
    *,
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Aligned plain-text table; floats formatted to ``precision``."""
    if not headers:
        raise MeasureError("headers must be non-empty")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_matrix(
    matrix: np.ndarray,
    labels: Sequence[str],
    *,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Square matrix (e.g. a Figure 12 heatmap) with row/column labels."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise MeasureError("expected a square matrix")
    if len(labels) != matrix.shape[0]:
        raise MeasureError("label count must match matrix size")
    width = max(max(len(l) for l in labels), precision + 3)
    lines = []
    if title:
        lines.append(title)
    header = " " * (width + 1) + " ".join(l.rjust(width) for l in labels)
    lines.append(header)
    for i, label in enumerate(labels):
        cells = " ".join(f"{matrix[i, j]:.{precision}f}".rjust(width) for j in range(len(labels)))
        lines.append(f"{label.rjust(width)} {cells}")
    return "\n".join(lines)


def render_boxplot(
    named_samples: Dict[str, Sequence[float]],
    *,
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """ASCII box plots on a shared scale, one row per named sample.

    Whiskers are the sample min/max, the box spans Q1..Q3, ``|`` marks the
    median — the same statistics the paper's figures encode.
    """
    if not named_samples:
        raise MeasureError("no samples to plot")
    stats = {name: summarize(values) for name, values in named_samples.items()}
    lo = min(s.minimum for s in stats.values())
    hi = max(s.maximum for s in stats.values())
    span = hi - lo or 1.0
    label_width = max(len(n) for n in stats)

    def col(x: float) -> int:
        return int(round((x - lo) / span * (width - 1)))

    lines = []
    if title:
        lines.append(title)
    for name, s in stats.items():
        row = [" "] * width
        for x in np.linspace(s.minimum, s.maximum, width * 2):
            row[col(x)] = "-"
        for x in np.linspace(s.q1, s.q3, width * 2):
            row[col(x)] = "="
        row[col(s.median)] = "|"
        lines.append(f"{name.rjust(label_width)} [{''.join(row)}]")
    lines.append(
        f"{' ' * label_width}  {lo:<12.4f}{' ' * max(0, width - 24)}{hi:>12.4f}"
    )
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float], *, bins: int = 10, width: int = 40, title: Optional[str] = None
) -> str:
    """ASCII histogram of a sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise MeasureError("no values to plot")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines = []
    if title:
        lines.append(title)
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{left:9.4f}, {right:9.4f}) {bar} {count}")
    return "\n".join(lines)


def summarize_rows(
    named_samples: Dict[str, Sequence[float]],
) -> List[List[object]]:
    """Rows of (name, n, min, q1, median, q3, max) for format_value_table."""
    rows = []
    for name, values in named_samples.items():
        s: DistributionStats = summarize(values)
        rows.append([name, s.n, s.minimum, s.q1, s.median, s.q3, s.maximum])
    return rows
