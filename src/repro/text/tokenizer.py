"""WordPiece-style greedy subword tokenizer.

Words are matched greedily against the vocabulary from the left; unmatched
suffixes continue as ``##``-prefixed pieces.  Because the vocabulary contains
every single character and two-character continuation, tokenization never
fails — the ``[UNK]`` token only appears for characters outside the
vocabulary alphabet (rare unicode).

Two profiles matter to Observatory: the default lowercasing profile (BERT,
T5, and the table models built on them) and a case-sensitive profile
(RoBERTa's byte-level flavour), which fragments abbreviated headers
differently and drives RoBERTa's outlier behaviour in P7.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.text.normalize import normalize_text, split_numbers, split_words
from repro.text.vocab import UNK, Vocabulary, default_vocabulary


@dataclasses.dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer behaviour knobs.

    Attributes:
        lowercase: case-fold input (BERT-style) or keep case (RoBERTa-style).
        strip_accents: remove combining marks.
        split_digits: split digit runs into single-digit tokens.
        max_pieces_per_word: hard cap on subword pieces per word; longer
            words are truncated (protects against pathological strings).
    """

    lowercase: bool = True
    strip_accents: bool = True
    split_digits: bool = True
    max_pieces_per_word: int = 8


class Tokenizer:
    """Greedy longest-match subword tokenizer over a :class:`Vocabulary`."""

    # Tokenization is a pure function of (text, config); embedding sweeps
    # re-tokenize the same cell values thousands of times across variants,
    # so results are memoized per tokenizer (bounded — see _CACHE_LIMIT).
    _CACHE_LIMIT = 65536

    def __init__(
        self,
        vocab: Optional[Vocabulary] = None,
        config: Optional[TokenizerConfig] = None,
    ):
        self.vocab = vocab or default_vocabulary()
        self.config = config or TokenizerConfig()
        # Longest token length bounds the greedy window.
        self._max_len = max(len(t) for t in [UNK] + list(self._plain_tokens()))
        self._cache: dict = {}

    def _plain_tokens(self):
        # The vocabulary does not expose its token list directly; probing via
        # ids keeps Vocabulary's surface minimal.
        for i in range(len(self.vocab)):
            yield self.vocab.token(i)

    # ------------------------------------------------------------------

    def tokenize_word(self, word: str) -> List[str]:
        """Subword pieces of a single word (no whitespace)."""
        cfg = self.config
        if cfg.split_digits and word.isdigit() and len(word) > 1:
            return [d for d in split_numbers(word)][: cfg.max_pieces_per_word]
        pieces: List[str] = []
        start = 0
        while start < len(word) and len(pieces) < cfg.max_pieces_per_word:
            prefix = "##" if start > 0 else ""
            end = min(len(word), start + self._max_len)
            match = None
            while end > start:
                candidate = prefix + word[start:end]
                if candidate in self.vocab:
                    match = candidate
                    break
                end -= 1
            if match is None:
                pieces.append(UNK)
                start += 1
            else:
                pieces.append(match)
                start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        """Tokenize arbitrary text into subword pieces (memoized)."""
        if text is None:
            return []
        text = str(text)
        cached = self._cache.get(text)
        if cached is not None:
            return list(cached)
        pieces = self._tokenize_uncached(text)
        if len(self._cache) < self._CACHE_LIMIT:
            self._cache[text] = tuple(pieces)
        return pieces

    def _tokenize_uncached(self, text: str) -> List[str]:
        cfg = self.config
        normalized = normalize_text(
            text, lowercase=cfg.lowercase, accents=cfg.strip_accents
        )
        pieces: List[str] = []
        for word in split_words(normalized):
            lookup = word if cfg.lowercase else word.lower()
            # Case-sensitive profile: words whose original casing differs get
            # a distinct piece stream (prefix marker), mirroring how
            # byte-level BPE assigns different ids to "Country" vs "country".
            if not cfg.lowercase and word != lookup:
                pieces.append(UNK if "##^" not in self.vocab else "##^")
                pieces.extend(self.tokenize_word(lookup))
            else:
                pieces.extend(self.tokenize_word(lookup))
        return pieces

    def encode(self, text: str) -> List[int]:
        """Token ids of ``text``."""
        return [self.vocab.id(p) for p in self.tokenize(text)]

    def count(self, text: str) -> int:
        """Number of pieces ``text`` tokenizes into (for budget planning)."""
        return len(self.tokenize(text))

    def tokenize_values(self, values: Sequence[object]) -> List[List[str]]:
        """Tokenize each value of a column independently."""
        return [self.tokenize("" if v is None else str(v)) for v in values]
