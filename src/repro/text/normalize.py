"""Text normalization and word splitting for the tokenizer.

Two normalization profiles are provided because tokenizer behaviour is one
of the model-specific mechanisms Observatory surfaces: BERT-style models
lowercase and strip accents, while RoBERTa-style byte-level tokenizers are
case-sensitive, which makes them fragile to header abbreviations
("CountryName" -> "cntry_name" shares no case-normalized pieces).
"""

from __future__ import annotations

import re
import unicodedata
from typing import List

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_WORD_RE = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z0-9]")


def strip_accents(text: str) -> str:
    """Remove combining marks (é -> e)."""
    decomposed = unicodedata.normalize("NFD", text)
    return "".join(ch for ch in decomposed if unicodedata.category(ch) != "Mn")


def split_camel_case(text: str) -> str:
    """Insert spaces at camelCase boundaries ("CountryName" -> "Country Name")."""
    return _CAMEL_RE.sub(" ", text)


def normalize_text(text: str, *, lowercase: bool = True, accents: bool = True) -> str:
    """Normalize raw cell/header text before word splitting.

    Camel-case boundaries are always split (headers like ``birthYear`` are
    ubiquitous in web tables); lowercasing and accent stripping depend on the
    tokenizer profile.
    """
    text = split_camel_case(text)
    if accents:
        text = strip_accents(text)
    if lowercase:
        text = text.lower()
    return text


def split_words(text: str) -> List[str]:
    """Split normalized text into words, digit runs, and punctuation marks."""
    return _WORD_RE.findall(text)


def split_numbers(word: str, group: int = 1) -> List[str]:
    """Split a digit run into fixed-size groups ("1997" -> ["1","9","9","7"]).

    Subword tokenizers shred long numbers; splitting digits individually
    (group=1) mirrors how T5/BERT vocabularies fragment unseen numerals and
    is what makes numeric columns hard to discriminate without context (P8).
    """
    if group < 1:
        raise ValueError("group must be positive")
    return [word[i : i + group] for i in range(0, len(word), group)]
