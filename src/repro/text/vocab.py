"""Deterministic subword vocabulary.

The vocabulary is built from a fixed seed lexicon (common English words,
table-domain terms, and the domain banks used by the dataset generators)
plus all length-3 character n-grams, so that any string tokenizes into a
bounded number of pieces without an unknown-token escape hatch dominating.
The build is fully deterministic: no corpus counting, no files.
"""

from __future__ import annotations

import string
from typing import Dict, Iterable, List, Optional

from repro.errors import TokenizationError

# Special tokens shared by all surrogate models.  Serializers insert them to
# mark structure; aggregation retrieves embeddings anchored at them.
PAD = "[PAD]"
CLS = "[CLS]"
SEP = "[SEP]"
MASK = "[MASK]"
UNK = "[UNK]"
ROW = "[ROW]"
CELL = "[CELL]"
HEADER = "[HEADER]"
CAPTION = "[CAPTION]"

SPECIAL_TOKENS = (PAD, CLS, SEP, MASK, UNK, ROW, CELL, HEADER, CAPTION)

_BASE_WORDS = (
    "the a an of and or in on at to for with from by is are was were be been "
    "has have had not no yes true false null none table row column cell value "
    "name id key type date year month day time city country continent state "
    "region code number total count rank score points price cost amount "
    "percent rate average min max first last title description status group "
    "category class label player team game season match competition result "
    "win loss draw goals medal event record world championship olympic "
    "company revenue employees founded industry sector stock market film "
    "movie director actor genre budget gross album song artist band track "
    "book author publisher isbn pages language population area capital "
    "currency gdp president university student degree department course "
    "product brand model weight height length width color size quantity "
    "order customer address street zip postal phone email station airport "
    "river mountain lake island species animal plant protein vitamin "
    "nutrient mineral calcium iron zinc sodium potassium magnesium "
    "age birth death gender nation nationality men women male female "
    "january february march april may june july august september october "
    "november december monday tuesday wednesday thursday friday saturday "
    "sunday north south east west new old big small high low long short "
    "usd eur gbp jpy ron km mi kg lb ml gal mph"
).split()


def _char_trigrams() -> List[str]:
    """All ##xyz continuation trigrams over lowercase letters and digits."""
    alphabet = string.ascii_lowercase + string.digits
    # Full 36^3 would be 46k entries; restrict to letter-led trigrams plus
    # digit pairs, which covers realistic continuations compactly.
    pieces = []
    for a in alphabet:
        for b in alphabet:
            pieces.append(f"##{a}{b}")
    return pieces


class Vocabulary:
    """Immutable token -> id mapping with WordPiece-style pieces.

    Layout: special tokens first, then single characters (standalone and
    ``##`` continuations), two-character continuations, then whole words.
    Ids are stable across processes because the build is deterministic.
    """

    def __init__(self, extra_words: Optional[Iterable[str]] = None):
        tokens: List[str] = list(SPECIAL_TOKENS)
        alphabet = string.ascii_lowercase + string.digits + string.punctuation
        tokens.extend(alphabet)
        tokens.extend(f"##{ch}" for ch in alphabet)
        tokens.extend(_char_trigrams())
        seen = set(tokens)
        for word in _BASE_WORDS:
            if word not in seen:
                tokens.append(word)
                seen.add(word)
        for word in sorted(set(extra_words or [])):
            word = word.lower()
            if word and word not in seen:
                tokens.append(word)
                seen.add(word)
        self._id_of: Dict[str, int] = {tok: i for i, tok in enumerate(tokens)}
        self._tokens = tokens

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._id_of

    def id(self, token: str) -> int:
        """Id of ``token``; raises TokenizationError if absent."""
        try:
            return self._id_of[token]
        except KeyError:
            raise TokenizationError(f"token {token!r} not in vocabulary") from None

    def token(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._tokens):
            raise TokenizationError(f"token id {token_id} out of range")
        return self._tokens[token_id]

    @property
    def pad_id(self) -> int:
        return self._id_of[PAD]

    def is_special(self, token: str) -> bool:
        return token in SPECIAL_TOKENS


_DEFAULT_VOCAB: Optional[Vocabulary] = None


def default_vocabulary() -> Vocabulary:
    """Process-wide shared default vocabulary (built once, ~5k entries)."""
    global _DEFAULT_VOCAB
    if _DEFAULT_VOCAB is None:
        _DEFAULT_VOCAB = Vocabulary()
    return _DEFAULT_VOCAB
