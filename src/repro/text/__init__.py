"""Tokenization substrate: normalization, vocabulary, WordPiece-style tokenizer."""

from repro.text.normalize import normalize_text, split_words, split_numbers
from repro.text.vocab import Vocabulary, SPECIAL_TOKENS
from repro.text.tokenizer import Tokenizer

__all__ = [
    "normalize_text",
    "split_words",
    "split_numbers",
    "Vocabulary",
    "SPECIAL_TOKENS",
    "Tokenizer",
]
