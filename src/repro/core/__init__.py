"""The Observatory core: properties, measures, and the characterization framework."""

from repro.core.levels import EmbeddingLevel
from repro.core.framework import Observatory
from repro.core.registry import available_properties, load_property, register_property
from repro.core.results import DistributionSummary, PropertyResult

__all__ = [
    "EmbeddingLevel",
    "Observatory",
    "available_properties",
    "load_property",
    "register_property",
    "DistributionSummary",
    "PropertyResult",
]
