"""The Observatory facade.

One object that wires models, properties, and default dataset suites
together, so that

    obs = Observatory(seed=0)
    result = obs.characterize("bert", "row_order_insignificance")

runs Definition 1 end to end: infer the property's level of embeddings with
the model over each table of the property's corpus and compute the measure
over the embedding distribution.  Datasets are built lazily at standard
(small) sizes and cached; every entry point also accepts explicit data for
full-control runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.properties import (
    ContextConfig,
    EntityStabilityConfig,
    FDConfig,
    JoinRelationshipConfig,
    PerturbationConfig,
    SampleFidelityConfig,
    ShuffleConfig,
)
from repro.core.registry import available_properties, load_property
from repro.core.results import PropertyResult
from repro.data.corpus import TableCorpus
from repro.data.drspider import PerturbationSuite
from repro.data.entities import EntityCatalog
from repro.data.nextiajd import NextiaJDGenerator, Testbed
from repro.data.sotab import SotabGenerator
from repro.data.spider import SpiderGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.models.registry import load_model


@dataclasses.dataclass
class DatasetSizes:
    """Default sizes of the lazily built dataset suites.

    Kept deliberately small so the full characterization matrix runs in
    seconds; benchmarks override with larger values.
    """

    wikitables_tables: int = 24
    spider_databases: int = 6
    nextiajd_pairs: int = 60
    sotab_tables: int = 40
    n_permutations: int = 24


class Observatory:
    """Run (model x property x dataset) characterizations."""

    def __init__(self, seed: int = 0, sizes: Optional[DatasetSizes] = None):
        self.seed = seed
        self.sizes = sizes or DatasetSizes()
        self._models: Dict[str, EmbeddingModel] = {}
        self._datasets: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Lazily built shared resources
    # ------------------------------------------------------------------

    def model(self, name: str) -> EmbeddingModel:
        """Load (and cache) a registered model."""
        if name not in self._models:
            self._models[name] = load_model(name)
        return self._models[name]

    def wikitables(self) -> TableCorpus:
        if "wikitables" not in self._datasets:
            self._datasets["wikitables"] = WikiTablesGenerator(self.seed).generate(
                self.sizes.wikitables_tables
            )
        return self._datasets["wikitables"]

    def spider_sets(self):
        if "spider" not in self._datasets:
            self._datasets["spider"] = SpiderGenerator(self.seed).fd_evaluation_sets(
                self.sizes.spider_databases
            )
        return self._datasets["spider"]

    def join_pairs(self, testbed: Testbed = Testbed.XS):
        key = f"nextiajd/{testbed.value}"
        if key not in self._datasets:
            self._datasets[key] = NextiaJDGenerator(self.seed).generate_pairs(
                self.sizes.nextiajd_pairs, testbed
            )
        return self._datasets[key]

    def perturbation_suite(self) -> PerturbationSuite:
        if "drspider" not in self._datasets:
            self._datasets["drspider"] = PerturbationSuite(self.wikitables())
        return self._datasets["drspider"]

    def sotab(self) -> TableCorpus:
        if "sotab" not in self._datasets:
            self._datasets["sotab"] = SotabGenerator(self.seed).generate(
                self.sizes.sotab_tables
            )
        return self._datasets["sotab"]

    def entity_catalog(self) -> EntityCatalog:
        if "entities" not in self._datasets:
            self._datasets["entities"] = EntityCatalog(self.seed)
        return self._datasets["entities"]

    # ------------------------------------------------------------------
    # Characterization entry points
    # ------------------------------------------------------------------

    def characterize(
        self,
        model_name: str,
        property_name: str,
        *,
        data: Optional[object] = None,
        config: Optional[object] = None,
        partner_model: Optional[str] = None,
    ) -> PropertyResult:
        """Run one property against one model with sensible defaults.

        ``entity_stability`` is pairwise and needs ``partner_model``; every
        other property takes a single model.  ``data``/``config`` override
        the defaults of the property.
        """
        runner = load_property(property_name)
        if property_name == "entity_stability":
            if partner_model is None:
                raise PropertyConfigError(
                    "entity_stability compares two models; pass partner_model"
                )
            pair = (self.model(model_name), self.model(partner_model))
            return runner.run(
                pair,
                data if data is not None else self.entity_catalog(),
                config or EntityStabilityConfig(),
            )
        model = self.model(model_name)
        defaults = {
            "row_order_insignificance": (
                self.wikitables,
                ShuffleConfig(n_permutations=self.sizes.n_permutations),
            ),
            "column_order_insignificance": (
                self.wikitables,
                ShuffleConfig(n_permutations=self.sizes.n_permutations),
            ),
            "join_relationship": (self.join_pairs, JoinRelationshipConfig()),
            "functional_dependencies": (self.spider_sets, FDConfig()),
            "sample_fidelity": (self.wikitables, SampleFidelityConfig()),
            "perturbation_robustness": (self.perturbation_suite, PerturbationConfig()),
            "heterogeneous_context": (self.sotab, ContextConfig()),
        }
        if property_name not in defaults:
            if data is None or config is None:
                raise PropertyConfigError(
                    f"custom property {property_name!r} needs explicit data and config"
                )
            return runner.run(model, data, config)
        data_factory, default_config = defaults[property_name]
        return runner.run(
            model,
            data if data is not None else data_factory(),
            config or default_config,
        )

    def characterize_models(
        self,
        model_names: Sequence[str],
        property_name: str,
        *,
        data: Optional[object] = None,
        config: Optional[object] = None,
    ) -> List[PropertyResult]:
        """Run one property across several models (skipping unsupported ones).

        Models lacking every level the property needs are skipped silently —
        this mirrors the paper's Table 2 "models in scope" filtering.
        """
        runner = load_property(property_name)
        results = []
        for name in model_names:
            model = self.model(name)
            if runner.levels and not any(model.supports(lv) for lv in runner.levels):
                continue
            results.append(
                self.characterize(name, property_name, data=data, config=config)
            )
        return results

    @staticmethod
    def properties() -> List[str]:
        return available_properties()
