"""The Observatory facade.

One object that wires models, properties, default dataset suites, and the
execution runtime together, so that

    obs = Observatory(seed=0)
    result = obs.characterize("bert", "row_order_insignificance")

runs Definition 1 end to end: infer the property's level of embeddings with
the model over each table of the property's corpus and compute the measure
over the embedding distribution.  Datasets are built lazily at standard
(small) sizes and cached; every entry point also accepts explicit data for
full-control runs.

Execution goes through :mod:`repro.runtime`: each model is wrapped in an
:class:`~repro.runtime.planner.EmbeddingExecutor` sharing one embedding
cache, so repeated requests — within a property, across properties, across
``characterize`` calls — are deduplicated, batched through the encoder,
and served from cache.  ``Observatory.sweep`` runs a whole
(model × property) matrix on a worker pool and returns a structured
:class:`~repro.runtime.sweep.SweepResult`:

    sweep = obs.sweep(["bert", "t5"], ["row_order_insignificance",
                                       "column_order_insignificance"])
    sweep.get("bert", "row_order_insignificance")   # PropertyResult
    sweep.skipped                                   # nothing lost silently
    sweep.cache_stats                               # hit/miss accounting

Pass ``runtime=RuntimeConfig(enabled=False)`` to reproduce the legacy
one-call-at-a-time compute profile (the benchmark baseline).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional, Sequence

from repro.core.properties import (
    ContextConfig,
    EntityStabilityConfig,
    FDConfig,
    JoinRelationshipConfig,
    PerturbationConfig,
    SampleFidelityConfig,
    ShuffleConfig,
)
from repro.core.registry import available_properties, load_property
from repro.core.results import ModelCharacterizations, PropertyResult, SkippedCell
from repro.data.corpus import TableCorpus
from repro.data.drspider import PerturbationSuite
from repro.data.entities import EntityCatalog
from repro.data.nextiajd import NextiaJDGenerator, Testbed
from repro.data.sotab import SotabGenerator
from repro.data.spider import SpiderGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import ObservatoryError, PropertyConfigError
from repro.models.backends.padded import PaddedBackend, PaddingStats
from repro.models.backends.remote import RemoteBackend, TransportStats
from repro.models.base import EmbeddingModel
from repro.models.registry import load_model
from repro.runtime.cache import EmbeddingCache
from repro.runtime.pipeline import PipelineStats
from repro.runtime.planner import EmbeddingExecutor, RuntimeConfig
from repro.runtime.sweep import SweepResult, run_sweep


@dataclasses.dataclass
class DatasetSizes:
    """Default sizes of the lazily built dataset suites.

    Kept deliberately small so the full characterization matrix runs in
    seconds; benchmarks override with larger values.  ``min_rows`` /
    ``max_rows`` bound the rows per generated table and must be set
    together (``None``/``None`` keeps each generator's own default range)
    — benchmarks raise them to measure encode-dominated workloads.
    """

    wikitables_tables: int = 24
    spider_databases: int = 6
    nextiajd_pairs: int = 60
    sotab_tables: int = 40
    n_permutations: int = 24
    min_rows: Optional[int] = None
    max_rows: Optional[int] = None

    def __post_init__(self):
        if (self.min_rows is None) != (self.max_rows is None):
            # A lone bound would silently fight each generator's default
            # for the other bound (e.g. min_rows=15 vs wikitables'
            # default max_rows=12) — require an explicit pair instead.
            raise ValueError("min_rows and max_rows must be set together")
        if self.min_rows is not None and not 2 <= self.min_rows <= self.max_rows:
            raise ValueError("need 2 <= min_rows <= max_rows")

    def row_range_kwargs(self) -> Dict[str, int]:
        """kwargs for generators accepting ``min_rows``/``max_rows``."""
        if self.min_rows is None:
            return {}
        return {"min_rows": self.min_rows, "max_rows": self.max_rows}


class Observatory:
    """Run (model x property x dataset) characterizations."""

    def __init__(
        self,
        seed: int = 0,
        sizes: Optional[DatasetSizes] = None,
        runtime: Optional[RuntimeConfig] = None,
    ):
        self.seed = seed
        self.sizes = sizes or DatasetSizes()
        self.runtime = runtime or RuntimeConfig()
        self.cache: Optional[EmbeddingCache] = self.runtime.build_cache()
        # One encoder backend shared by every model of this Observatory:
        # backends are stateless w.r.t. encoding (the encoder travels per
        # call), so sharing is safe and yields one merged PaddingStats.
        self.encoder_backend = self.runtime.build_backend()
        self._models: Dict[str, EmbeddingModel] = {}
        self._executors: Dict[str, EmbeddingExecutor] = {}
        self._datasets: Dict[str, object] = {}
        # sweep() runs cells on a worker pool; lazy builders must not race.
        self._model_lock = threading.Lock()
        self._dataset_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lazily built shared resources
    # ------------------------------------------------------------------

    def model(self, name: str) -> EmbeddingModel:
        """Load (and cache) a registered model on the configured backend."""
        with self._model_lock:
            if name not in self._models:
                model = load_model(name)
                setter = getattr(model, "set_backend", None)
                if setter is not None:
                    setter(self.encoder_backend)
                elif self.runtime.backend_name() != "local":
                    # A custom model that can't honor the requested
                    # non-default numerics must fail loudly, not silently
                    # compute on whatever strategy it hard-codes.
                    raise ObservatoryError(
                        f"model {name!r} does not support encoder backends; "
                        f"cannot run it with backend "
                        f"{self.runtime.backend_name()!r}"
                    )
                self._models[name] = model
            return self._models[name]

    def executor(self, name: str) -> EmbeddingExecutor:
        """The runtime executor for a model: cache-backed unless disabled.

        All executors of one Observatory share one embedding cache, so a
        table embedded for any property is a hit for every later request.
        """
        model = self.model(name)
        with self._model_lock:
            if name not in self._executors:
                self._executors[name] = EmbeddingExecutor(
                    model,
                    cache=self.cache,
                    batch_size=self.runtime.batch_size,
                    naive=not self.runtime.enabled,
                    async_encode=self.runtime.enabled and self.runtime.async_encode,
                )
            return self._executors[name]

    # ------------------------------------------------------------------
    # Runtime observability
    # ------------------------------------------------------------------

    def backend_description(self) -> str:
        """Human rendering of the configured encoder backend."""
        return self.encoder_backend.describe()

    def pipeline_stats(self) -> PipelineStats:
        """Async-encode accounting merged across this Observatory's executors."""
        with self._model_lock:
            executors = list(self._executors.values())
        return PipelineStats.merged([e.pipeline_stats for e in executors])

    def padding_stats(self) -> Optional[PaddingStats]:
        """Cumulative padding-waste snapshot, ``None`` under an exact backend."""
        if isinstance(self.encoder_backend, PaddedBackend):
            return self.encoder_backend.stats_snapshot()
        return None

    def transport_stats(self) -> Optional[TransportStats]:
        """Cumulative remote-transport snapshot, ``None`` unless remote."""
        if isinstance(self.encoder_backend, RemoteBackend):
            return self.encoder_backend.stats_snapshot()
        return None

    def _dataset(self, key: str, build) -> object:
        with self._dataset_lock:
            if key not in self._datasets:
                self._datasets[key] = build()
            return self._datasets[key]

    def wikitables(self) -> TableCorpus:
        return self._dataset(
            "wikitables",
            lambda: WikiTablesGenerator(self.seed).generate(
                self.sizes.wikitables_tables, **self.sizes.row_range_kwargs()
            ),
        )

    def spider_sets(self):
        return self._dataset(
            "spider",
            lambda: SpiderGenerator(self.seed).fd_evaluation_sets(
                self.sizes.spider_databases
            ),
        )

    def join_pairs(self, testbed: Testbed = Testbed.XS):
        return self._dataset(
            f"nextiajd/{testbed.value}",
            lambda: NextiaJDGenerator(self.seed).generate_pairs(
                self.sizes.nextiajd_pairs, testbed
            ),
        )

    def perturbation_suite(self) -> PerturbationSuite:
        wikitables = self.wikitables()  # build outside the lock (reentrancy)
        return self._dataset("drspider", lambda: PerturbationSuite(wikitables))

    def sotab(self) -> TableCorpus:
        return self._dataset(
            "sotab",
            lambda: SotabGenerator(self.seed).generate(
                self.sizes.sotab_tables, **self.sizes.row_range_kwargs()
            ),
        )

    def entity_catalog(self) -> EntityCatalog:
        return self._dataset("entities", lambda: EntityCatalog(self.seed))

    def prepare_property_data(self, property_name: str) -> None:
        """Materialize the default dataset a property will ask for.

        ``sweep`` calls this serially before fanning out so worker threads
        only ever read the dataset dict.
        """
        factories = {
            "row_order_insignificance": self.wikitables,
            "column_order_insignificance": self.wikitables,
            "join_relationship": self.join_pairs,
            "functional_dependencies": self.spider_sets,
            "sample_fidelity": self.wikitables,
            "entity_stability": self.entity_catalog,
            "perturbation_robustness": self.perturbation_suite,
            "heterogeneous_context": self.sotab,
        }
        factory = factories.get(property_name)
        if factory is not None:
            factory()

    # ------------------------------------------------------------------
    # Characterization entry points
    # ------------------------------------------------------------------

    def characterize(
        self,
        model_name: str,
        property_name: str,
        *,
        data: Optional[object] = None,
        config: Optional[object] = None,
        partner_model: Optional[str] = None,
    ) -> PropertyResult:
        """Run one property against one model with sensible defaults.

        ``entity_stability`` is pairwise and needs ``partner_model``; every
        other property takes a single model.  ``data``/``config`` override
        the defaults of the property.
        """
        runner = load_property(property_name)
        if property_name == "entity_stability":
            if partner_model is None:
                raise PropertyConfigError(
                    "entity_stability compares two models; pass partner_model"
                )
            pair = (self.executor(model_name), self.executor(partner_model))
            return runner.run(
                pair,
                data if data is not None else self.entity_catalog(),
                config or EntityStabilityConfig(),
            )
        model = self.executor(model_name)
        defaults = {
            "row_order_insignificance": (
                self.wikitables,
                ShuffleConfig(n_permutations=self.sizes.n_permutations),
            ),
            "column_order_insignificance": (
                self.wikitables,
                ShuffleConfig(n_permutations=self.sizes.n_permutations),
            ),
            "join_relationship": (self.join_pairs, JoinRelationshipConfig()),
            "functional_dependencies": (self.spider_sets, FDConfig()),
            "sample_fidelity": (self.wikitables, SampleFidelityConfig()),
            "perturbation_robustness": (self.perturbation_suite, PerturbationConfig()),
            "heterogeneous_context": (self.sotab, ContextConfig()),
        }
        if property_name not in defaults:
            if data is None or config is None:
                raise PropertyConfigError(
                    f"custom property {property_name!r} needs explicit data and config"
                )
            return runner.run(model, data, config)
        data_factory, default_config = defaults[property_name]
        return runner.run(
            model,
            data if data is not None else data_factory(),
            config or default_config,
        )

    def characterize_models(
        self,
        model_names: Sequence[str],
        property_name: str,
        *,
        data: Optional[object] = None,
        config: Optional[object] = None,
    ) -> ModelCharacterizations:
        """Run one property across several models, recording exclusions.

        Models lacking every level the property needs are not run — the
        paper's Table 2 "models in scope" filtering — but they are no
        longer dropped silently: the returned
        :class:`~repro.core.results.ModelCharacterizations` behaves like
        the ``List[PropertyResult]`` it used to be and additionally carries
        a ``skipped`` list of :class:`~repro.core.results.SkippedCell`
        records.
        """
        runner = load_property(property_name)
        results: List[PropertyResult] = []
        skipped: List[SkippedCell] = []
        for name in model_names:
            model = self.model(name)
            if runner.levels and not any(model.supports(lv) for lv in runner.levels):
                needed = "/".join(lv.value for lv in runner.levels)
                skipped.append(
                    SkippedCell(
                        name, property_name, f"model exposes no {needed} embeddings"
                    )
                )
                continue
            results.append(
                self.characterize(name, property_name, data=data, config=config)
            )
        return ModelCharacterizations(results, skipped)

    def apply_deadline(self, deadline) -> None:
        """Thread a live :class:`~repro.runtime.faults.Deadline` down.

        Forwards the sweep's wall-clock budget to every layer that waits:
        the encoder backend's transport retries and the disk tier's lock
        acquisition.  Layers without a ``set_deadline`` hook are skipped —
        the deadline only ever *shortens* patience, never adds failure
        modes of its own.
        """
        for sink in (self.encoder_backend, self.cache):
            setter = getattr(sink, "set_deadline", None)
            if setter is not None:
                setter(deadline)

    def sweep(
        self,
        models: Sequence[str],
        properties: Optional[Sequence[str]] = None,
        *,
        max_workers: Optional[int] = None,
        execution: Optional[str] = None,
        on_error: Optional[str] = None,
        journal_dir: Optional[str] = None,
        resume: bool = False,
        fault_policy=None,
    ) -> SweepResult:
        """Run a (model × property) matrix on a worker pool.

        Independent cells run concurrently (``max_workers`` defaults to
        ``runtime.max_workers``, then the ``REPRO_SWEEP_WORKERS``
        environment variable); every cell is deterministically seeded,
        so the result is identical for any worker count and execution
        mode.  ``execution="thread"`` (default) shares this Observatory's
        embedding cache across a thread pool; ``execution="process"``
        runs cells under the work-stealing scheduler
        (:mod:`repro.runtime.scheduler`) on spawned worker processes
        that rebuild models from configuration and share only the
        on-disk cache tier — scaling Python-heavy cells past the GIL,
        with straggler re-dispatch and crash salvage.  Unset, the mode
        falls back to ``runtime.execution``, then the
        ``REPRO_SWEEP_EXECUTION`` environment variable, then
        ``"thread"``.  Out-of-scope cells are recorded on
        ``SweepResult.skipped`` rather than dropped.

        ``on_error="degrade"`` records failing cells as typed
        :class:`~repro.runtime.sweep.CellFailure` entries on
        ``SweepResult.failures`` instead of aborting the sweep.
        ``journal_dir`` enables the write-ahead sweep journal
        (:class:`~repro.runtime.journal.SweepJournal`); with
        ``resume=True`` a journal from an interrupted run replays its
        completed cells and only the remainder is dispatched.
        ``fault_policy`` overrides ``runtime.fault_policy`` for this
        sweep (deadline, retry budgets, lock patience).
        """
        property_names = (
            list(properties) if properties is not None else available_properties()
        )
        return run_sweep(
            self,
            list(models),
            property_names,
            max_workers=max_workers or self.runtime.max_workers,
            execution=execution,
            on_error=on_error,
            journal_dir=journal_dir,
            resume=resume,
            fault_policy=fault_policy,
        )

    @staticmethod
    def properties() -> List[str]:
        return available_properties()
