"""Cosine similarity utilities."""

from __future__ import annotations

import numpy as np

from repro.errors import MeasureError


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; raises on zero vectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise MeasureError(f"shape mismatch: {a.shape} vs {b.shape}")
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm < 1e-24:
        raise MeasureError("cosine similarity is undefined for zero vectors")
    # Clip: accumulated rounding can push the ratio epsilon beyond [-1, 1].
    return float(np.clip(a @ b / norm, -1.0, 1.0))


def cosine_to_reference(reference: np.ndarray, others: np.ndarray) -> np.ndarray:
    """Cosine of each row of ``others`` against one reference vector."""
    reference = np.asarray(reference, dtype=np.float64).ravel()
    others = np.atleast_2d(np.asarray(others, dtype=np.float64))
    ref_norm = np.linalg.norm(reference)
    other_norms = np.linalg.norm(others, axis=1)
    if ref_norm < 1e-24 or np.any(other_norms < 1e-24):
        raise MeasureError("cosine similarity is undefined for zero vectors")
    return np.clip(others @ reference / (other_norms * ref_norm), -1.0, 1.0)


def pairwise_cosine(matrix: np.ndarray) -> np.ndarray:
    """Full [n, n] cosine matrix over the rows of ``matrix``."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=np.float64))
    norms = np.linalg.norm(matrix, axis=1)
    if np.any(norms < 1e-24):
        raise MeasureError("cosine similarity is undefined for zero vectors")
    normalized = matrix / norms[:, None]
    return np.clip(normalized @ normalized.T, -1.0, 1.0)
