"""K-nearest-neighbour machinery (Measure 6, entity stability).

Entity stability compares the K nearest neighbours of a query entity in two
embedding spaces; the agreement is the percent overlap of the neighbour
sets, averaged over queries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import MeasureError
from repro.core.measures.similarity import pairwise_cosine


def knn_indices(
    embeddings: np.ndarray, query_index: int, k: int, *, metric: str = "cosine"
) -> list:
    """Indices of the K nearest neighbours of one row (query excluded).

    Ties are broken by index for determinism.
    """
    embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    n = embeddings.shape[0]
    if not 0 <= query_index < n:
        raise MeasureError(f"query index {query_index} out of range")
    if k < 1 or k > n - 1:
        raise MeasureError(f"k must be in [1, {n - 1}], got {k}")
    if metric == "cosine":
        sims = pairwise_cosine(embeddings)[query_index]
        scores = -sims  # ascending sort: most similar first
    elif metric == "euclidean":
        diffs = embeddings - embeddings[query_index]
        scores = np.linalg.norm(diffs, axis=1)
    else:
        raise MeasureError(f"unknown metric {metric!r}")
    scores[query_index] = np.inf
    order = np.lexsort((np.arange(n), scores))
    return [int(i) for i in order[:k]]


def knn_overlap(neighbors_a: Sequence[int], neighbors_b: Sequence[int]) -> float:
    """Percent overlap |A ∩ B| / K of two equally-sized neighbour sets."""
    set_a, set_b = set(neighbors_a), set(neighbors_b)
    if len(set_a) != len(neighbors_a) or len(set_b) != len(neighbors_b):
        raise MeasureError("neighbour lists must not contain duplicates")
    if len(set_a) != len(set_b):
        raise MeasureError("neighbour sets must have equal size")
    if not set_a:
        raise MeasureError("neighbour sets must be non-empty")
    return len(set_a & set_b) / len(set_a)


def average_overlap_at_k(
    space_a: np.ndarray,
    space_b: np.ndarray,
    query_indices: Sequence[int],
    k: int,
) -> float:
    """Average KNN overlap of the queries between two embedding spaces.

    This is Measure 6 for n=2 spaces: both matrices index the same entities
    row-by-row; for each query the K nearest neighbours are retrieved in each
    space and the mean percent overlap is returned.
    """
    space_a = np.atleast_2d(np.asarray(space_a, dtype=np.float64))
    space_b = np.atleast_2d(np.asarray(space_b, dtype=np.float64))
    if space_a.shape[0] != space_b.shape[0]:
        raise MeasureError("embedding spaces must cover the same entities")
    if not len(query_indices):
        raise MeasureError("at least one query entity is required")
    overlaps = [
        knn_overlap(
            knn_indices(space_a, q, k),
            knn_indices(space_b, q, k),
        )
        for q in query_indices
    ]
    return float(np.mean(overlaps))
