"""Multivariate coefficients of variation (Measures 1 and 2).

The univariate coefficient of variation (standard deviation over mean)
summarizes relative variability; Observatory needs a multivariate extension
to summarize the dispersion of a *set of embedding vectors* into one scalar.
The paper adopts Albert & Zhang's MCV (Biometrical Journal 2010)

    gamma_AZ = sqrt( mu' Sigma mu / (mu' mu)^2 )

because, unlike the older proposals surveyed by Aerts et al. (2015), it
needs no inverse of the covariance matrix — essential when the number of
embeddings (say 720 shuffles) is smaller than the embedding dimensionality
(e.g. 768), which makes Sigma singular.  The other variants are implemented
for the ablation benchmark that demonstrates exactly this failure mode.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import MeasureError


def _mean_and_cov(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise MeasureError(f"expected a 2-D sample matrix, got shape {samples.shape}")
    n = samples.shape[0]
    if n < 2:
        raise MeasureError("MCV needs at least two samples")
    mean = samples.mean(axis=0)
    centered = samples - mean
    cov = centered.T @ centered / (n - 1)
    return mean, cov


def albert_zhang_mcv(samples: np.ndarray) -> float:
    """Albert & Zhang's MCV: sqrt(mu' Sigma mu) / (mu' mu).

    Works with singular covariance matrices (n < d); returns 0 for a set of
    identical vectors.  Raises :class:`MeasureError` when the mean vector is
    (numerically) zero, where relative variation is undefined.
    """
    mean, cov = _mean_and_cov(samples)
    mu_sq = float(mean @ mean)
    if mu_sq < 1e-24:
        raise MeasureError("MCV is undefined for a zero mean vector")
    quad = float(mean @ cov @ mean)
    # Numerical noise can drive the quadratic form epsilon-negative.
    return float(np.sqrt(max(quad, 0.0)) / mu_sq)


def reyment_mcv(samples: np.ndarray) -> float:
    """Reyment's MCV: sqrt( (det Sigma)^(1/d) / (mu' mu) ).

    Degenerates to 0 whenever Sigma is singular — the paper's motivating
    failure case (n < d embeddings).
    """
    mean, cov = _mean_and_cov(samples)
    mu_sq = float(mean @ mean)
    if mu_sq < 1e-24:
        raise MeasureError("MCV is undefined for a zero mean vector")
    d = cov.shape[0]
    sign, logdet = np.linalg.slogdet(cov)
    if sign <= 0:
        return 0.0
    return float(np.sqrt(np.exp(logdet / d) / mu_sq))


def van_valen_mcv(samples: np.ndarray) -> float:
    """Van Valen's MCV: sqrt( trace(Sigma) / (mu' mu) ).

    Ignores correlations between dimensions (the paper's reason for not
    using it), but is always defined.
    """
    mean, cov = _mean_and_cov(samples)
    mu_sq = float(mean @ mean)
    if mu_sq < 1e-24:
        raise MeasureError("MCV is undefined for a zero mean vector")
    return float(np.sqrt(np.trace(cov) / mu_sq))


def voinov_nikulin_mcv(samples: np.ndarray) -> float:
    """Voinov & Nikulin's MCV: 1 / sqrt(mu' Sigma^{-1} mu).

    Requires an invertible covariance matrix; raises :class:`MeasureError`
    when Sigma is singular (n <= d), demonstrating why Albert–Zhang is the
    right choice for embedding dispersion.
    """
    mean, cov = _mean_and_cov(samples)
    d = cov.shape[0]
    if samples.shape[0] <= d or np.linalg.matrix_rank(cov) < d:
        raise MeasureError(
            "Voinov-Nikulin MCV needs an invertible covariance matrix "
            f"(n={samples.shape[0]}, d={d})"
        )
    quad = float(mean @ np.linalg.solve(cov, mean))
    if quad <= 0:
        raise MeasureError("mu' Sigma^-1 mu must be positive")
    return float(1.0 / np.sqrt(quad))


MCV_VARIANTS: Dict[str, Callable[[np.ndarray], float]] = {
    "albert_zhang": albert_zhang_mcv,
    "reyment": reyment_mcv,
    "van_valen": van_valen_mcv,
    "voinov_nikulin": voinov_nikulin_mcv,
}
