"""Spearman's rank correlation (Measure 3).

Implemented from first principles (Pearson correlation of midranks, which
handles ties correctly) with a large-sample t-approximation for the p-value
— the paper reports significance at p < 0.01 for all Table 3 coefficients.
The test suite cross-checks against scipy.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.errors import MeasureError


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Midranks (average ranks for ties), 1-based like the classical rho."""
    arr = np.asarray(values, dtype=np.float64)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(len(arr), dtype=np.float64)
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = midrank
        i = j + 1
    return ranks


@dataclasses.dataclass(frozen=True)
class SpearmanResult:
    """Spearman coefficient with its two-sided p-value and sample size."""

    rho: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """Significance at the paper's reporting threshold (p < 0.01)."""
        return self.p_value < 0.01


def spearman(x: Sequence[float], y: Sequence[float]) -> SpearmanResult:
    """Spearman's rho between two paired samples.

    rho is the Pearson correlation of the midranks; the p-value uses the
    t-distribution approximation t = rho * sqrt((n-2)/(1-rho^2)) which is
    accurate for the sample sizes Observatory uses (hundreds of pairs).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise MeasureError("spearman expects two equal-length 1-D samples")
    n = len(x)
    if n < 3:
        raise MeasureError("spearman needs at least 3 pairs")
    rx = rankdata(x)
    ry = rankdata(y)
    rx_c = rx - rx.mean()
    ry_c = ry - ry.mean()
    denom = math.sqrt(float(rx_c @ rx_c) * float(ry_c @ ry_c))
    if denom < 1e-24:
        raise MeasureError("spearman is undefined when a variable is constant")
    rho = float(np.clip(rx_c @ ry_c / denom, -1.0, 1.0))
    p_value = _two_sided_p(rho, n)
    return SpearmanResult(rho=rho, p_value=p_value, n=n)


def _two_sided_p(rho: float, n: int) -> float:
    if abs(rho) >= 1.0:
        return 0.0
    t = abs(rho) * math.sqrt((n - 2) / (1.0 - rho * rho))
    return 2.0 * _student_t_sf(t, n - 2)


def _student_t_sf(t: float, df: int) -> float:
    """Survival function of Student's t via the incomplete beta function."""
    if df <= 0:
        raise MeasureError("degrees of freedom must be positive")
    x = df / (df + t * t)
    return 0.5 * _incomplete_beta(df / 2.0, 0.5, x)


def _incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta I_x(a, b) via the continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float, max_iter: int = 200, eps: float = 1e-12) -> float:
    """Lentz's continued-fraction evaluation for the incomplete beta."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    result = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        num = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + num * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + num / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        result *= d * c
        num = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + num * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + num / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        result *= delta
        if abs(delta - 1.0) < eps:
            break
    return result
