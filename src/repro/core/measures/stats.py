"""Distribution summaries for reporting.

The paper reads its figures through box-plot statistics — quartiles,
medians, and the Tukey "minimum/maximum" (Q1 - 1.5 IQR / Q3 + 1.5 IQR) —
so results carry a :class:`DistributionStats` with exactly those numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.errors import MeasureError


@dataclasses.dataclass(frozen=True)
class DistributionStats:
    """Five-number + Tukey-whisker summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def tukey_low(self) -> float:
        """Lower whisker Q1 - 1.5 IQR (the paper's 'minimum')."""
        return self.q1 - 1.5 * self.iqr

    @property
    def tukey_high(self) -> float:
        """Upper whisker Q3 + 1.5 IQR (the paper's 'maximum')."""
        return self.q3 + 1.5 * self.iqr

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "tukey_low": self.tukey_low,
            "tukey_high": self.tukey_high,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "DistributionStats":
        """Rebuild stats previously flattened by :meth:`to_dict`.

        ``tukey_low``/``tukey_high`` are derived properties and are
        ignored on input; the stored fields alone determine them.
        """
        try:
            return cls(
                n=int(payload["n"]),
                mean=float(payload["mean"]),
                std=float(payload["std"]),
                minimum=float(payload["min"]),
                q1=float(payload["q1"]),
                median=float(payload["median"]),
                q3=float(payload["q3"]),
                maximum=float(payload["max"]),
            )
        except KeyError as exc:
            raise MeasureError(
                f"distribution payload missing key {exc.args[0]!r}"
            ) from exc

    def __str__(self) -> str:
        return (
            f"n={self.n} min={self.minimum:.3f} q1={self.q1:.3f} "
            f"med={self.median:.3f} q3={self.q3:.3f} max={self.maximum:.3f}"
        )


def five_number_summary(values: Sequence[float]) -> tuple:
    """(min, q1, median, q3, max) with linear-interpolation quartiles."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise MeasureError("cannot summarize an empty sample")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return float(arr.min()), float(q1), float(med), float(q3), float(arr.max())


def summarize(values: Sequence[float]) -> DistributionStats:
    """Full :class:`DistributionStats` of a sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise MeasureError("cannot summarize an empty sample")
    minimum, q1, median, q3, maximum = five_number_summary(arr)
    return DistributionStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=minimum,
        q1=q1,
        median=median,
        q3=q3,
        maximum=maximum,
    )
