"""Quantitative measures used by the eight properties."""

from repro.core.measures.mcv import (
    albert_zhang_mcv,
    reyment_mcv,
    van_valen_mcv,
    voinov_nikulin_mcv,
    MCV_VARIANTS,
)
from repro.core.measures.similarity import cosine_similarity, pairwise_cosine, cosine_to_reference
from repro.core.measures.correlation import spearman, SpearmanResult
from repro.core.measures.knn import knn_indices, knn_overlap, average_overlap_at_k
from repro.core.measures.stats import DistributionStats, five_number_summary, summarize
from repro.core.measures.geometry import (
    isotropy_score,
    leading_direction_share,
    mean_pairwise_cosine,
    variance_spectrum,
)

__all__ = [
    "albert_zhang_mcv",
    "reyment_mcv",
    "van_valen_mcv",
    "voinov_nikulin_mcv",
    "MCV_VARIANTS",
    "cosine_similarity",
    "pairwise_cosine",
    "cosine_to_reference",
    "spearman",
    "SpearmanResult",
    "knn_indices",
    "knn_overlap",
    "average_overlap_at_k",
    "DistributionStats",
    "five_number_summary",
    "summarize",
    "isotropy_score",
    "leading_direction_share",
    "mean_pairwise_cosine",
    "variance_spectrum",
]
