"""Embedding-space geometry diagnostics.

Supports the analysis behind Figures 6/8: contextual embedding spaces are
*anisotropic* — vectors crowd around a dominant direction — which is why
cosine similarity can stay high while MCV explodes.  These diagnostics
quantify that: mean pairwise cosine (the classic anisotropy probe),
isotropy score (uniformity of the variance spectrum), and the share of
variance captured by the leading principal direction.
"""

from __future__ import annotations

import numpy as np

from repro.core.measures.similarity import pairwise_cosine
from repro.errors import MeasureError


def mean_pairwise_cosine(embeddings: np.ndarray) -> float:
    """Average cosine over all distinct pairs; near 0 for isotropic clouds,
    near 1 for direction-dominated (anisotropic) spaces."""
    embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    n = embeddings.shape[0]
    if n < 2:
        raise MeasureError("need at least two embeddings")
    sims = pairwise_cosine(embeddings)
    off_diagonal_sum = sims.sum() - np.trace(sims)
    return float(off_diagonal_sum / (n * (n - 1)))


def variance_spectrum(embeddings: np.ndarray) -> np.ndarray:
    """Eigenvalue spectrum of the sample covariance (descending)."""
    embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    if embeddings.shape[0] < 2:
        raise MeasureError("need at least two embeddings")
    centered = embeddings - embeddings.mean(axis=0)
    _, singular, _ = np.linalg.svd(centered, full_matrices=False)
    return (singular ** 2) / (embeddings.shape[0] - 1)


def isotropy_score(embeddings: np.ndarray) -> float:
    """Spectral flatness of the variance spectrum, in (0, 1].

    1 means variance spreads evenly over directions (isotropic); values
    near 0 mean one direction dominates.  Computed as the ratio of the
    geometric to the arithmetic mean of the nonzero spectrum.
    """
    spectrum = variance_spectrum(embeddings)
    nonzero = spectrum[spectrum > 1e-18]
    if nonzero.size == 0:
        return 1.0  # a degenerate point cloud is trivially "even"
    arithmetic = nonzero.mean()
    geometric = float(np.exp(np.mean(np.log(nonzero))))
    return float(geometric / arithmetic)


def leading_direction_share(embeddings: np.ndarray) -> float:
    """Fraction of total variance along the top principal direction."""
    spectrum = variance_spectrum(embeddings)
    total = spectrum.sum()
    if total <= 0:
        return 0.0
    return float(spectrum[0] / total)
