"""Result containers shared by all property runners.

Every property produces a :class:`PropertyResult`: the property and model
names, named distributions (each a
:class:`~repro.core.measures.stats.DistributionStats`), named scalars, and
optional raw series for plotting/benchmarks.  Results render to dicts and
markdown so benchmarks can print the same rows the paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.measures.stats import DistributionStats, summarize

# Alias kept for the public API: the paper speaks of distributions of
# measure values; DistributionStats is their summary.
DistributionSummary = DistributionStats


@dataclasses.dataclass
class PropertyResult:
    """Outcome of running one property against one model (or model pair).

    Attributes:
        property_name: e.g. ``"row_order_insignificance"``.
        model_name: the analyzed model (or ``"model_a|model_b"`` for pairwise
            properties such as entity stability).
        distributions: named summarized samples, e.g.
            ``{"column/cosine": DistributionStats(...)}``.
        scalars: named headline numbers, e.g. Spearman coefficients.
        series: optional named raw samples for figures.
        metadata: run parameters worth recording (permutation counts, seeds).
    """

    property_name: str
    model_name: str
    distributions: Dict[str, DistributionStats] = dataclasses.field(default_factory=dict)
    scalars: Dict[str, float] = dataclasses.field(default_factory=dict)
    series: Dict[str, List[float]] = dataclasses.field(default_factory=dict)
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def add_distribution(self, key: str, values: Sequence[float], *, keep_series: bool = False) -> None:
        """Summarize ``values`` under ``key`` (optionally keep raw series)."""
        self.distributions[key] = summarize(values)
        if keep_series:
            self.series[key] = [float(v) for v in values]

    def distribution(self, key: str) -> DistributionStats:
        try:
            return self.distributions[key]
        except KeyError:
            available = ", ".join(sorted(self.distributions)) or "(none)"
            raise KeyError(
                f"no distribution {key!r} in result; available: {available}"
            ) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "property": self.property_name,
            "model": self.model_name,
            "distributions": {k: v.to_dict() for k, v in self.distributions.items()},
            "scalars": dict(self.scalars),
            "metadata": dict(self.metadata),
        }

    def to_jsonable(self) -> Dict[str, object]:
        """Full lossless form, including raw series (journal storage).

        Unlike :meth:`to_dict` (the reporting view, which drops series to
        keep benchmark dumps small), this captures every field so a
        result replayed from the sweep journal is indistinguishable from
        one computed live.  Floats survive exactly: ``json`` emits the
        shortest round-tripping repr.
        """
        payload = self.to_dict()
        payload["series"] = {k: list(v) for k, v in self.series.items()}
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict[str, object]) -> "PropertyResult":
        """Inverse of :meth:`to_jsonable` (tolerates a missing series key)."""
        return cls(
            property_name=payload["property"],
            model_name=payload["model"],
            distributions={
                k: DistributionStats.from_dict(v)
                for k, v in payload.get("distributions", {}).items()
            },
            scalars=dict(payload.get("scalars", {})),
            series={k: list(v) for k, v in payload.get("series", {}).items()},
            metadata=dict(payload.get("metadata", {})),
        )

    def __repr__(self) -> str:
        return (
            f"PropertyResult({self.property_name!r}, model={self.model_name!r}, "
            f"distributions={sorted(self.distributions)}, scalars={sorted(self.scalars)})"
        )


@dataclasses.dataclass(frozen=True)
class SkippedCell:
    """A (model, property) combination that was not run, and why.

    Both ``Observatory.characterize_models`` and ``Observatory.sweep``
    record these instead of dropping out-of-scope models silently.
    """

    model_name: str
    property_name: str
    reason: str


class ModelCharacterizations(list):
    """Results of one property across several models, with skip records.

    Behaves exactly like the plain ``List[PropertyResult]`` it used to be
    (indexing, iteration, ``len``), plus a ``skipped`` attribute listing
    every model that was excluded and the reason — the paper's Table 2
    scoping made visible instead of silent.
    """

    def __init__(
        self,
        results: Sequence[PropertyResult] = (),
        skipped: Sequence[SkippedCell] = (),
    ):
        super().__init__(results)
        self.skipped: List[SkippedCell] = list(skipped)

    def __repr__(self) -> str:
        return (
            f"ModelCharacterizations({len(self)} results, "
            f"{len(self.skipped)} skipped)"
        )


def results_table(
    results: Sequence[PropertyResult],
    distribution_key: str,
    *,
    fields: Sequence[str] = ("q1", "median", "q3"),
    title: Optional[str] = None,
) -> str:
    """Markdown table of one distribution across several models' results."""
    header = "| model | " + " | ".join(fields) + " |"
    rule = "|" + "|".join(["---"] * (len(fields) + 1)) + "|"
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.extend([header, rule])
    for result in results:
        stats = result.distributions.get(distribution_key)
        if stats is None:
            row = [result.model_name] + ["-"] * len(fields)
        else:
            as_dict = stats.to_dict()
            row = [result.model_name] + [f"{as_dict[f]:.3f}" for f in fields]
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def scalars_table(
    results: Sequence[PropertyResult],
    scalar_keys: Sequence[str],
    *,
    title: Optional[str] = None,
) -> str:
    """Markdown table of named scalars across results (paper-style tables)."""
    header = "| model | " + " | ".join(scalar_keys) + " |"
    rule = "|" + "|".join(["---"] * (len(scalar_keys) + 1)) + "|"
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.extend([header, rule])
    for result in results:
        cells = [result.model_name]
        for key in scalar_keys:
            value = result.scalars.get(key)
            cells.append("-" if value is None else f"{value:.3f}")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
