"""Property 5: Sample Fidelity.

Embedding a full large column is often infeasible (input limits, memory),
so practice resorts to sampling — at the cost of fidelity.  Measure 5
quantifies it: the full-column embedding is obtained by chunking the column
under its shared header and aggregating chunk embeddings; n uniform random
samples at a given ratio are embedded directly; fidelity is the average
cosine between sample and full embeddings, complemented by the MCV over
{full, samples}.  The paper sweeps sampling fractions 0.25/0.5/0.75.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.mcv import albert_zhang_mcv
from repro.core.measures.similarity import cosine_similarity
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.corpus import TableCorpus
from repro.errors import MeasureError, PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.relational.sampling import distinct_samples
from repro.runtime.planner import as_executor


@dataclasses.dataclass(frozen=True)
class SampleFidelityConfig:
    """Sampling fractions, samples per column, and column selection."""

    ratios: Tuple[float, ...] = (0.25, 0.5, 0.75)
    n_samples: int = 5
    min_column_size: int = 4
    keep_series: bool = False

    def __post_init__(self):
        if not self.ratios or any(not 0 < r <= 1 for r in self.ratios):
            raise PropertyConfigError("ratios must lie in (0, 1]")
        if self.n_samples < 1:
            raise PropertyConfigError("n_samples must be positive")


class SampleFidelity(PropertyRunner):
    """P5 runner: cosine(sample embedding, full embedding) across ratios."""

    name = "sample_fidelity"
    levels = (EmbeddingLevel.COLUMN,)

    def run(
        self,
        model: EmbeddingModel,
        data: TableCorpus,
        config: SampleFidelityConfig = SampleFidelityConfig(),
    ) -> PropertyResult:
        """Measure fidelity for every column of every corpus table.

        Embedding requests — the full column plus every sample at every
        ratio — are planned per table and submitted to the embedding
        planner as one deduplicated batch.  Result distributions:
        ``ratio_<r>/fidelity`` (per-column average cosine) and
        ``ratio_<r>/mcv`` (MCV over the full + sample embedding set), one
        pair per configured ratio.
        """
        executor = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=executor.name,
            metadata={
                "ratios": list(config.ratios),
                "n_samples": config.n_samples,
                "corpus": data.name,
            },
        )
        fidelity: Dict[float, List[float]] = {r: [] for r in config.ratios}
        mcvs: Dict[float, List[float]] = {r: [] for r in config.ratios}
        for table in data:
            # Plan every request this table needs, then embed in one batch:
            # index 0 per column is the full column, the rest its samples.
            requests: List[Tuple[str, List[object]]] = []
            plan: List[Tuple[int, int, Dict[float, Tuple[int, int]]]] = []
            for col in range(table.num_columns):
                values = table.column_values(col)
                if len(values) < config.min_column_size:
                    continue
                header = table.header[col]
                full_index = len(requests)
                requests.append((header, values))
                spans: Dict[float, Tuple[int, int]] = {}
                for ratio in config.ratios:
                    samples = distinct_samples(
                        values,
                        ratio,
                        config.n_samples,
                        seed_parts=(table.table_id, col, ratio),
                    )
                    spans[ratio] = (len(requests), len(requests) + len(samples))
                    requests.extend((header, list(s)) for s in samples)
                plan.append((col, full_index, spans))
            if not requests:
                continue
            embeddings = executor.embed_value_columns(requests)
            for _, full_index, spans in plan:
                full = embeddings[full_index]
                if np.linalg.norm(full) < 1e-12:
                    continue
                for ratio in config.ratios:
                    lo, hi = spans[ratio]
                    sample_embs = embeddings[lo:hi]
                    cosines = [
                        cosine_similarity(full, emb) for emb in sample_embs
                    ]
                    fidelity[ratio].append(float(np.mean(cosines)))
                    try:
                        mcvs[ratio].append(
                            albert_zhang_mcv(np.stack([full] + sample_embs))
                        )
                    except MeasureError:
                        pass
        for ratio in config.ratios:
            if fidelity[ratio]:
                result.add_distribution(
                    f"ratio_{ratio}/fidelity",
                    fidelity[ratio],
                    keep_series=config.keep_series,
                )
            if mcvs[ratio]:
                result.add_distribution(
                    f"ratio_{ratio}/mcv", mcvs[ratio], keep_series=config.keep_series
                )
        if not result.distributions:
            raise PropertyConfigError("no measurable columns in the corpus")
        return result
