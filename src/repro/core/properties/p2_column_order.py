"""Property 2: Column Order Insignificance.

Relational tables store data without a privileged attribute order, yet some
models exploit neighbouring columns as context.  Measure 2 mirrors Measure 1
along the column axis: embed column-wise shuffles and summarize drift with
cosine-to-reference and MCV.  The paper finds column shuffling perturbs
embeddings more than row shuffling for most models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.properties.base import SHUFFLE_LEVELS, _ShuffleProperty
from repro.relational.table import Table


class ColumnOrderInsignificance(_ShuffleProperty):
    """P2 runner: shuffle columns, measure embedding drift."""

    name = "column_order_insignificance"
    levels = SHUFFLE_LEVELS
    axis = "column"

    def _n_items(self, table: Table) -> int:
        return table.num_columns

    def _apply(self, table: Table, perm: Sequence[int]) -> Table:
        return table.reorder_columns(list(perm))

    def _align_columns(self, embeddings: np.ndarray, perm: Sequence[int]) -> np.ndarray:
        # Column j of the variant holds original column perm[j].
        aligned = np.zeros_like(embeddings)
        for j, original in enumerate(perm):
            aligned[original] = embeddings[j]
        return aligned

    def _align_rows(self, embeddings: np.ndarray, perm: Sequence[int]) -> np.ndarray:
        # Rows do not move under a column shuffle.
        return embeddings
