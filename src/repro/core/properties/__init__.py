"""The eight primitive properties of Observatory.

Relational-model properties: P1 row-order insignificance, P2 column-order
insignificance, P3 join relationship, P4 functional dependencies.
Data-distribution properties: P5 sample fidelity, P6 entity stability,
P7 perturbation robustness, P8 heterogeneous context.
"""

from repro.core.properties.base import ShuffleConfig, PropertyRunner
from repro.core.properties.p1_row_order import RowOrderInsignificance
from repro.core.properties.p2_column_order import ColumnOrderInsignificance
from repro.core.properties.p3_join_relationship import JoinRelationship, JoinRelationshipConfig
from repro.core.properties.p4_functional_dependencies import (
    FunctionalDependencies,
    FDConfig,
)
from repro.core.properties.p5_sample_fidelity import SampleFidelity, SampleFidelityConfig
from repro.core.properties.p6_entity_stability import EntityStability, EntityStabilityConfig
from repro.core.properties.p7_perturbation_robustness import (
    PerturbationRobustness,
    PerturbationConfig,
)
from repro.core.properties.p8_heterogeneous_context import (
    HeterogeneousContext,
    ContextConfig,
    ContextSetting,
)

__all__ = [
    "PropertyRunner",
    "ShuffleConfig",
    "RowOrderInsignificance",
    "ColumnOrderInsignificance",
    "JoinRelationship",
    "JoinRelationshipConfig",
    "FunctionalDependencies",
    "FDConfig",
    "SampleFidelity",
    "SampleFidelityConfig",
    "EntityStability",
    "EntityStabilityConfig",
    "PerturbationRobustness",
    "PerturbationConfig",
    "HeterogeneousContext",
    "ContextConfig",
    "ContextSetting",
]
