"""Shared property-runner machinery.

:class:`PropertyRunner` is the minimal contract: a name, the embedding
levels the property characterizes, and a ``run`` entry point returning a
:class:`~repro.core.results.PropertyResult`.  The shuffle-based properties
(P1/P2) share the variant-embedding loop implemented here.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.mcv import albert_zhang_mcv
from repro.core.measures.similarity import cosine_similarity
from repro.core.results import PropertyResult
from repro.data.corpus import TableCorpus
from repro.errors import MeasureError, PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.relational.permutations import sample_permutations
from repro.relational.table import Table
from repro.runtime.planner import as_executor

# Levels the order-insignificance properties characterize, in report order.
SHUFFLE_LEVELS = (EmbeddingLevel.COLUMN, EmbeddingLevel.ROW, EmbeddingLevel.TABLE)


class PropertyRunner(abc.ABC):
    """Contract for a property: named, level-scoped, runnable."""

    name: str = "property"
    levels: Tuple[EmbeddingLevel, ...] = ()

    @abc.abstractmethod
    def run(self, model, data, **kwargs) -> PropertyResult:
        """Characterize ``model`` over ``data`` and return the result."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclasses.dataclass(frozen=True)
class ShuffleConfig:
    """Parameters of the order-insignificance measures.

    Attributes:
        n_permutations: variants per table (the paper caps at 1000; tests
            and benchmarks use smaller values for speed).
        levels: which embedding levels to measure (filtered further by what
            the model supports).
        keep_series: retain raw cosine/MCV samples on the result.
    """

    n_permutations: int = 100
    levels: Tuple[EmbeddingLevel, ...] = SHUFFLE_LEVELS
    keep_series: bool = False

    def __post_init__(self):
        if self.n_permutations < 2:
            raise PropertyConfigError("n_permutations must be at least 2")
        bad = set(self.levels) - set(SHUFFLE_LEVELS)
        if bad:
            raise PropertyConfigError(
                f"shuffle properties only cover {SHUFFLE_LEVELS}, got {bad}"
            )


class _ShuffleProperty(PropertyRunner):
    """Common implementation of P1/P2.

    Subclasses define the shuffle axis: how to permute a table and how to
    map variant embeddings back to the identity of the unshuffled items.
    """

    axis: str = "row"

    # -- axis hooks ----------------------------------------------------

    @abc.abstractmethod
    def _n_items(self, table: Table) -> int:
        """Number of permutable items (rows or columns)."""

    @abc.abstractmethod
    def _apply(self, table: Table, perm: Sequence[int]) -> Table:
        """Return the permuted variant."""

    @abc.abstractmethod
    def _align_columns(
        self, embeddings: np.ndarray, perm: Sequence[int]
    ) -> np.ndarray:
        """Map variant column embeddings back to original column identity."""

    @abc.abstractmethod
    def _align_rows(self, embeddings: np.ndarray, perm: Sequence[int]) -> np.ndarray:
        """Map variant row embeddings back to original row identity."""

    # -- main loop -----------------------------------------------------

    def run(
        self,
        model: EmbeddingModel,
        data: TableCorpus,
        config: ShuffleConfig = ShuffleConfig(),
    ) -> PropertyResult:
        """Measure cosine-to-original and MCV across shuffled variants.

        For every table, up to ``n_permutations`` distinct permutations are
        sampled (identity first, the reference).  All variants of a table
        are requested from the embedding planner in one call — one encoder
        pass yields every level, deduplicated and cached across properties
        — then, for each supported level, each item's embeddings across
        variants yield (a) cosine similarities of every shuffled variant
        against the reference and (b) one Albert–Zhang MCV over the
        variant set.
        """
        executor = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=executor.name,
            metadata={
                "axis": self.axis,
                "n_permutations": config.n_permutations,
                "corpus": data.name,
                "n_tables": len(data),
            },
        )
        levels = [lv for lv in config.levels if executor.supports(lv)]
        if not levels:
            raise PropertyConfigError(
                f"model {executor.name!r} supports none of the requested levels"
            )
        cosines: Dict[EmbeddingLevel, List[float]] = {lv: [] for lv in levels}
        mcvs: Dict[EmbeddingLevel, List[float]] = {lv: [] for lv in levels}

        for table in data:
            n_items = self._n_items(table)
            if n_items < 2:
                continue
            perms = sample_permutations(
                n_items,
                config.n_permutations,
                seed_parts=(table.table_id, self.axis),
            )
            variants = [self._apply(table, perm) for perm in perms]
            bundles = executor.embed_levels_many(variants, levels)
            variant_embeddings: Dict[EmbeddingLevel, List[np.ndarray]] = {
                lv: [] for lv in levels
            }
            for perm, bundle in zip(perms, bundles):
                for level in levels:
                    if level == EmbeddingLevel.COLUMN:
                        emb = self._align_columns(bundle[level], perm)
                    elif level == EmbeddingLevel.ROW:
                        emb = self._align_rows(bundle[level], perm)
                    else:
                        emb = bundle[level][None, :]
                    variant_embeddings[level].append(emb)
            for level in levels:
                stacks = variant_embeddings[level]
                n_entries = min(e.shape[0] for e in stacks)
                for item in range(n_entries):
                    trajectory = np.stack([e[item] for e in stacks])
                    if np.linalg.norm(trajectory, axis=1).min() < 1e-12:
                        continue  # item truncated away in some variant
                    reference = trajectory[0]
                    for other in trajectory[1:]:
                        cosines[level].append(cosine_similarity(reference, other))
                    try:
                        mcvs[level].append(albert_zhang_mcv(trajectory))
                    except MeasureError:
                        continue  # zero-mean trajectory: MCV undefined

        for level in levels:
            if cosines[level]:
                result.add_distribution(
                    f"{level.value}/cosine", cosines[level], keep_series=config.keep_series
                )
            if mcvs[level]:
                result.add_distribution(
                    f"{level.value}/mcv", mcvs[level], keep_series=config.keep_series
                )
        return result


def embeddings_by_variant(
    model: EmbeddingModel,
    table: Table,
    variants: Iterable[Table],
) -> List[np.ndarray]:
    """Column embeddings of a table and its variants (helper for figures)."""
    executor = as_executor(model)
    bundles = executor.embed_levels_many(
        [table, *variants], (EmbeddingLevel.COLUMN,)
    )
    return [bundle[EmbeddingLevel.COLUMN] for bundle in bundles]
