"""Property 7: Perturbation Robustness.

Semantics-preserving input perturbations (schema synonyms, schema
abbreviations, column equivalences) should leave a semantics-capturing
embedding nearly unchanged.  Measure 7: for each original column and its
perturbed variants, average the embedding cosine similarity over the
variants; report the distribution over columns and the grand mean per
perturbation kind.  The paper's Figure 13 shows vanilla LMs most robust,
RoBERTa with surprising low outliers, TaBERT least robust, and DODUO with
exactly zero variance (it never reads the schema).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.similarity import cosine_similarity
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.drspider import PerturbationKind, PerturbationSuite
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.runtime.planner import as_executor


@dataclasses.dataclass(frozen=True)
class PerturbationConfig:
    """Which perturbation kinds to evaluate."""

    kinds: Tuple[PerturbationKind, ...] = (
        PerturbationKind.SCHEMA_SYNONYM,
        PerturbationKind.SCHEMA_ABBREVIATION,
    )
    keep_series: bool = False

    def __post_init__(self):
        if not self.kinds:
            raise PropertyConfigError("at least one perturbation kind is required")


class PerturbationRobustness(PropertyRunner):
    """P7 runner: cosine(original column, perturbed column) distributions."""

    name = "perturbation_robustness"
    levels = (EmbeddingLevel.COLUMN,)

    def run(
        self,
        model: EmbeddingModel,
        data: PerturbationSuite,
        config: PerturbationConfig = PerturbationConfig(),
    ) -> PropertyResult:
        """Embed original and perturbed columns in their table context.

        Original and perturbed tables of a kind are submitted to the
        embedding planner as one batch — originals repeat across a table's
        perturbation cases and deduplicate there.  For each kind:
        distribution ``<kind>/cosine`` of per-column average similarity and
        scalar ``mean/<kind>`` over all pairs (the paper reports both the
        distribution plot and the single number).
        """
        executor = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=executor.name,
            metadata={"kinds": [k.value for k in config.kinds]},
        )
        for kind in config.kinds:
            cases = data.of_kind(kind)
            if not cases:
                continue
            # Originals repeat across a table's perturbation cases; embed
            # each once up front (dedup here keeps even the runtime-disabled
            # path as fast as the old per-column cache) and the perturbed
            # variants in one batch behind them.
            original_index: Dict[str, int] = {}
            tables: List = []
            for case in cases:
                if case.table.table_id not in original_index:
                    original_index[case.table.table_id] = len(tables)
                    tables.append(case.table)
            perturbed_start = len(tables)
            tables.extend(case.perturbed_table for case in cases)
            bundles = executor.embed_levels_many(tables, (EmbeddingLevel.COLUMN,))
            # Group variants by (table, column): Measure 7 averages over the
            # m_i variants of each original column first.
            grouped: Dict[Tuple[str, int], List[float]] = {}
            all_pairs: List[float] = []
            for i, case in enumerate(cases):
                key = (case.table.table_id, case.column_index)
                original_bundle = bundles[original_index[case.table.table_id]]
                original = original_bundle[EmbeddingLevel.COLUMN][case.column_index]
                perturbed = bundles[perturbed_start + i][EmbeddingLevel.COLUMN][
                    case.column_index
                ]
                similarity = cosine_similarity(original, perturbed)
                grouped.setdefault(key, []).append(similarity)
                all_pairs.append(similarity)
            per_column = [float(np.mean(v)) for v in grouped.values()]
            result.add_distribution(
                f"{kind.value}/cosine", per_column, keep_series=config.keep_series
            )
            result.scalars[f"mean/{kind.value}"] = float(np.mean(all_pairs))
        if not result.distributions:
            raise PropertyConfigError("suite contained no applicable perturbations")
        return result
