"""Property 7: Perturbation Robustness.

Semantics-preserving input perturbations (schema synonyms, schema
abbreviations, column equivalences) should leave a semantics-capturing
embedding nearly unchanged.  Measure 7: for each original column and its
perturbed variants, average the embedding cosine similarity over the
variants; report the distribution over columns and the grand mean per
perturbation kind.  The paper's Figure 13 shows vanilla LMs most robust,
RoBERTa with surprising low outliers, TaBERT least robust, and DODUO with
exactly zero variance (it never reads the schema).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.similarity import cosine_similarity
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.drspider import PerturbationKind, PerturbationSuite
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel


@dataclasses.dataclass(frozen=True)
class PerturbationConfig:
    """Which perturbation kinds to evaluate."""

    kinds: Tuple[PerturbationKind, ...] = (
        PerturbationKind.SCHEMA_SYNONYM,
        PerturbationKind.SCHEMA_ABBREVIATION,
    )
    keep_series: bool = False

    def __post_init__(self):
        if not self.kinds:
            raise PropertyConfigError("at least one perturbation kind is required")


class PerturbationRobustness(PropertyRunner):
    """P7 runner: cosine(original column, perturbed column) distributions."""

    name = "perturbation_robustness"
    levels = (EmbeddingLevel.COLUMN,)

    def run(
        self,
        model: EmbeddingModel,
        data: PerturbationSuite,
        config: PerturbationConfig = PerturbationConfig(),
    ) -> PropertyResult:
        """Embed original and perturbed columns in their table context.

        For each kind: distribution ``<kind>/cosine`` of per-column average
        similarity and scalar ``mean/<kind>`` over all pairs (the paper
        reports both the distribution plot and the single number).
        """
        result = PropertyResult(
            property_name=self.name,
            model_name=model.name,
            metadata={"kinds": [k.value for k in config.kinds]},
        )
        for kind in config.kinds:
            cases = data.of_kind(kind)
            if not cases:
                continue
            # Group variants by (table, column): Measure 7 averages over the
            # m_i variants of each original column first.
            grouped: Dict[Tuple[str, int], List[float]] = {}
            all_pairs: List[float] = []
            column_cache: Dict[str, np.ndarray] = {}
            for case in cases:
                key = (case.table.table_id, case.column_index)
                cache_key = f"{case.table.table_id}:{case.column_index}"
                original = column_cache.get(cache_key)
                if original is None:
                    original = model.embed_columns(case.table)[case.column_index]
                    column_cache[cache_key] = original
                perturbed = model.embed_columns(case.perturbed_table)[case.column_index]
                similarity = cosine_similarity(original, perturbed)
                grouped.setdefault(key, []).append(similarity)
                all_pairs.append(similarity)
            per_column = [float(np.mean(v)) for v in grouped.values()]
            result.add_distribution(
                f"{kind.value}/cosine", per_column, keep_series=config.keep_series
            )
            result.scalars[f"mean/{kind.value}"] = float(np.mean(all_pairs))
        if not result.distributions:
            raise PropertyConfigError("suite contained no applicable perturbations")
        return result
