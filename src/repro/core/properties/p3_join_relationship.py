"""Property 3: Join Relationship.

Join candidates in a table repository are classically found by value
overlap (containment, Jaccard); embedding approaches posit that
high-overlap columns are close in embedding space.  Measure 3 tests for a
monotone relationship: over (query, candidate) column pairs it computes the
Spearman rank correlation between embedding cosine similarity and each
value-overlap measure.  The paper's Table 3 reports these coefficients on
NextiaJD-XS; multiset Jaccard correlates most because embedding inference
consumes *all* values, duplicates included.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core.levels import EmbeddingLevel
from repro.core.measures.correlation import spearman
from repro.core.measures.similarity import cosine_similarity
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.nextiajd import JoinPair
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.relational.overlap import OVERLAP_MEASURES
from repro.runtime.planner import as_executor


@dataclasses.dataclass(frozen=True)
class JoinRelationshipConfig:
    """Which overlap measures to correlate and whether to keep raw series."""

    overlap_measures: Tuple[str, ...] = ("containment", "jaccard", "multiset_jaccard")
    keep_series: bool = False

    def __post_init__(self):
        unknown = set(self.overlap_measures) - set(OVERLAP_MEASURES)
        if unknown:
            raise PropertyConfigError(f"unknown overlap measures: {sorted(unknown)}")
        if not self.overlap_measures:
            raise PropertyConfigError("at least one overlap measure is required")


class JoinRelationship(PropertyRunner):
    """P3 runner: Spearman(embedding cosine, value overlap) over join pairs."""

    name = "join_relationship"
    levels = (EmbeddingLevel.COLUMN,)

    def run(
        self,
        model: EmbeddingModel,
        data: Sequence[JoinPair],
        config: JoinRelationshipConfig = JoinRelationshipConfig(),
    ) -> PropertyResult:
        """Correlate cosine similarity with each overlap measure.

        All query and candidate columns are requested from the embedding
        planner in one batch (standalone header + values, chunked if long;
        repeated columns deduplicate); the paired samples
        (cosine_i, overlap_i) feed Spearman's rho.  Scalars
        ``spearman/<measure>`` and ``p_value/<measure>`` land on the result.
        """
        if not data:
            raise PropertyConfigError("join relationship needs at least one pair")
        executor = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=executor.name,
            metadata={"n_pairs": len(data), "measures": list(config.overlap_measures)},
        )
        requests = []
        for pair in data:
            requests.append((pair.query_header, list(pair.query_values)))
            requests.append((pair.candidate_header, list(pair.candidate_values)))
        embeddings = executor.embed_value_columns(requests)
        cosines: List[float] = []
        overlaps: Dict[str, List[float]] = {m: [] for m in config.overlap_measures}
        for i, pair in enumerate(data):
            query_emb = embeddings[2 * i]
            cand_emb = embeddings[2 * i + 1]
            cosines.append(cosine_similarity(query_emb, cand_emb))
            for measure in config.overlap_measures:
                overlaps[measure].append(self._overlap_of(pair, measure))

        result.add_distribution("cosine", cosines, keep_series=config.keep_series)
        if config.keep_series:
            for measure, values in overlaps.items():
                result.series[f"overlap/{measure}"] = values
        for measure, values in overlaps.items():
            stats = spearman(values, cosines)
            result.scalars[f"spearman/{measure}"] = stats.rho
            result.scalars[f"p_value/{measure}"] = stats.p_value
        return result

    @staticmethod
    def _overlap_of(pair: JoinPair, measure: str) -> float:
        # Pairs precompute the three paper measures; anything else is
        # evaluated from raw values through the registry.
        precomputed = {
            "containment": pair.containment,
            "jaccard": pair.jaccard,
            "multiset_jaccard": pair.multiset_jaccard,
        }
        if measure in precomputed:
            return precomputed[measure]
        return OVERLAP_MEASURES[measure](list(pair.query_values), list(pair.candidate_values))
