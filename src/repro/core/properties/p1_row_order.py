"""Property 1: Row Order Insignificance.

A relational table is a *set* of rows — their order carries no meaning in
Codd's model.  Models that encode table structure with position embeddings
may nevertheless reflect row order in their outputs.  Measure 1 quantifies
this: embed each of n row-wise shuffles of a table, then summarize the
dispersion of each column/row/table embedding across shuffles with (a)
cosine similarity to the unshuffled reference and (b) Albert–Zhang's MCV.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.properties.base import SHUFFLE_LEVELS, _ShuffleProperty
from repro.relational.table import Table


class RowOrderInsignificance(_ShuffleProperty):
    """P1 runner: shuffle rows, measure embedding drift."""

    name = "row_order_insignificance"
    levels = SHUFFLE_LEVELS
    axis = "row"

    def _n_items(self, table: Table) -> int:
        return table.num_rows

    def _apply(self, table: Table, perm: Sequence[int]) -> Table:
        return table.reorder_rows(list(perm))

    def _align_columns(self, embeddings: np.ndarray, perm: Sequence[int]) -> np.ndarray:
        # Columns do not move under a row shuffle: identity alignment.
        return embeddings

    def _align_rows(self, embeddings: np.ndarray, perm: Sequence[int]) -> np.ndarray:
        # Row j of the variant holds original row perm[j]; scatter back so
        # index i always refers to the same logical row.  Rows truncated
        # away by the input limit stay zero and are skipped by the caller.
        aligned = np.zeros((len(perm), embeddings.shape[1]))
        for j, original in enumerate(perm):
            if j < embeddings.shape[0]:
                aligned[original] = embeddings[j]
        return aligned
