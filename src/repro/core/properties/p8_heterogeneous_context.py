"""Property 8: Heterogeneous Context.

Tables mix textual and non-textual data; without context a numeric column
is nearly uninterpretable (is "4.99" a price, a rating, a percentage?).
Measure 8 compares a column's *single-column* embedding against its
embedding under three context settings: (b) the subject column, (c) the
immediate neighbours, (d) the entire table.  The paper's Table 5 reports
min/median/max cosine per setting, split into non-textual and textual
column families.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.similarity import cosine_similarity
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.corpus import TableCorpus
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.relational.table import Table
from repro.runtime.planner import as_executor


class ContextSetting(enum.Enum):
    """The paper's four input settings (a: none is the reference)."""

    SUBJECT_COLUMN = "subject_column"
    NEIGHBORING_COLUMNS = "neighboring_columns"
    ENTIRE_TABLE = "entire_table"


@dataclasses.dataclass(frozen=True)
class ContextConfig:
    """Settings to evaluate and how target columns are chosen."""

    settings: Tuple[ContextSetting, ...] = (
        ContextSetting.SUBJECT_COLUMN,
        ContextSetting.NEIGHBORING_COLUMNS,
        ContextSetting.ENTIRE_TABLE,
    )
    keep_series: bool = False

    def __post_init__(self):
        if not self.settings:
            raise PropertyConfigError("at least one context setting is required")


def _is_textual_column(table: Table, index: int) -> bool:
    column = table.schema[index]
    # Prefer the generator's semantic annotation; fall back to the inferred
    # primitive data type for unannotated corpora.
    if column.semantic_type is not None:
        from repro.data.sotab import SEMANTIC_TYPES

        meta = SEMANTIC_TYPES.get(column.semantic_type)
        if meta is not None:
            return meta[0]
    return column.data_type.is_textual


def context_projection(
    table: Table, target: int, setting: ContextSetting
) -> Tuple[Table, int]:
    """The table slice a context setting feeds the model, plus the target's
    index inside that slice."""
    if setting == ContextSetting.ENTIRE_TABLE:
        return table, target
    if setting == ContextSetting.NEIGHBORING_COLUMNS:
        indices = [
            i
            for i in (target - 1, target, target + 1)
            if 0 <= i < table.num_columns
        ]
        return table.project(indices), indices.index(target)
    if setting == ContextSetting.SUBJECT_COLUMN:
        subject = table.subject_column_index()
        if subject is None or subject == target:
            # No usable subject context: degrade to the first other textual
            # column, else the immediate left neighbour.
            subject = next(
                (
                    i
                    for i in range(table.num_columns)
                    if i != target and table.schema[i].data_type.is_textual
                ),
                None,
            )
        if subject is None:
            subject = target - 1 if target > 0 else target + 1
        if not 0 <= subject < table.num_columns or subject == target:
            raise PropertyConfigError("table too narrow for subject-column context")
        indices = sorted([subject, target])
        return table.project(indices), indices.index(target)
    raise PropertyConfigError(f"unknown setting {setting!r}")


class HeterogeneousContext(PropertyRunner):
    """P8 runner: single-column vs contextual column embeddings."""

    name = "heterogeneous_context"
    levels = (EmbeddingLevel.COLUMN,)

    def run(
        self,
        model: EmbeddingModel,
        data: TableCorpus,
        config: ContextConfig = ContextConfig(),
    ) -> PropertyResult:
        """Cosine between the no-context embedding and each context setting.

        All projections a table induces — one single-column table per
        target plus each context slice — are planned up front and embedded
        through the planner in one deduplicated batch (the entire-table
        setting projects to the *same* table for every target, so it is
        embedded once rather than once per column).  Distributions are
        keyed ``<family>/<setting>`` with family in {"non_textual",
        "textual"} — exactly the two rows per model of the paper's Table 5.
        """
        executor = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=executor.name,
            metadata={
                "settings": [s.value for s in config.settings],
                "corpus": data.name,
            },
        )
        samples: Dict[str, List[float]] = {}
        for table in data:
            if table.num_columns < 2:
                continue
            # Plan: per target, its single-column reference then every
            # applicable (setting, inner-index) context slice.
            projections: List[Table] = []
            plan: List[Tuple[int, int, List[Tuple[ContextSetting, int, int]]]] = []
            for target in range(table.num_columns):
                single_index = len(projections)
                projections.append(table.single_column_table(target))
                contexts: List[Tuple[ContextSetting, int, int]] = []
                for setting in config.settings:
                    try:
                        context_table, inner = context_projection(table, target, setting)
                    except PropertyConfigError:
                        continue
                    contexts.append((setting, len(projections), inner))
                    projections.append(context_table)
                plan.append((target, single_index, contexts))
            bundles = executor.embed_levels_many(
                projections, (EmbeddingLevel.COLUMN,)
            )
            for target, single_index, contexts in plan:
                family = "textual" if _is_textual_column(table, target) else "non_textual"
                single = bundles[single_index][EmbeddingLevel.COLUMN][0]
                if np.linalg.norm(single) < 1e-12:
                    continue
                for setting, proj_index, inner in contexts:
                    contextual = bundles[proj_index][EmbeddingLevel.COLUMN][inner]
                    if np.linalg.norm(contextual) < 1e-12:
                        continue
                    key = f"{family}/{setting.value}"
                    samples.setdefault(key, []).append(
                        cosine_similarity(single, contextual)
                    )
        if not samples:
            raise PropertyConfigError("corpus yielded no context comparisons")
        for key, values in samples.items():
            result.add_distribution(key, values, keep_series=config.keep_series)
        return result
