"""Property 4: Functional Dependencies.

If an embedding space preserves an FD X -> Y as a translation (in the
TransE sense the paper borrows), then within each FD group — the tuples
sharing one determinant value — the distance between the determinant-cell
embedding and the dependent-cell embedding should be constant.  Measure 4
is the average group-wise variance S^2 of those distances; preserved FDs
give S^2 near 0 and, crucially, *smaller* values over true-FD column pairs
than over non-FD pairs.  The paper finds no model separates the two
distributions (Table 4, Figure 10).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.spider import FDCase
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.relational.fd import fd_groups
from repro.runtime.planner import as_executor


@dataclasses.dataclass(frozen=True)
class FDConfig:
    """Distance norm (the paper uses L1 or L2) and group-size floor."""

    norm: int = 2
    min_group_size: int = 2
    keep_series: bool = False

    def __post_init__(self):
        if self.norm not in (1, 2):
            raise PropertyConfigError("norm must be 1 (L1) or 2 (L2)")
        if self.min_group_size < 2:
            raise PropertyConfigError("variance needs groups of at least 2")


class FunctionalDependencies(PropertyRunner):
    """P4 runner: group-wise translation variance over FD / non-FD pairs."""

    name = "functional_dependencies"
    levels = (EmbeddingLevel.CELL,)

    def run(
        self,
        model: EmbeddingModel,
        data: Tuple[Sequence[FDCase], Sequence[FDCase]],
        config: FDConfig = FDConfig(),
    ) -> PropertyResult:
        """Compute S^2 for every case in (T_FD, T_notFD).

        Result distributions: ``fd/s2`` and ``non_fd/s2``; scalars
        ``mean_s2/fd`` and ``mean_s2/non_fd`` reproduce the paper's Table 4
        row pair, plus ``separation`` = mean(non-FD) - mean(FD).
        """
        fd_cases, non_fd_cases = data
        if not fd_cases or not non_fd_cases:
            raise PropertyConfigError("both FD and non-FD case lists are required")
        model = as_executor(model)
        result = PropertyResult(
            property_name=self.name,
            model_name=model.name,
            metadata={
                "norm": f"L{config.norm}",
                "n_fd": len(fd_cases),
                "n_non_fd": len(non_fd_cases),
            },
        )
        fd_s2 = self._variances(model, fd_cases, config)
        non_fd_s2 = self._variances(model, non_fd_cases, config)
        if not fd_s2 or not non_fd_s2:
            raise PropertyConfigError(
                "no measurable cases (all FD groups below min_group_size?)"
            )
        result.add_distribution("fd/s2", fd_s2, keep_series=config.keep_series)
        result.add_distribution("non_fd/s2", non_fd_s2, keep_series=config.keep_series)
        result.scalars["mean_s2/fd"] = float(np.mean(fd_s2))
        result.scalars["mean_s2/non_fd"] = float(np.mean(non_fd_s2))
        result.scalars["separation"] = (
            result.scalars["mean_s2/non_fd"] - result.scalars["mean_s2/fd"]
        )
        return result

    def _variances(
        self, model: EmbeddingModel, cases: Sequence[FDCase], config: FDConfig
    ) -> List[float]:
        out: List[float] = []
        for case in cases:
            s2 = self.case_variance(model, case, config)
            if s2 is not None:
                out.append(s2)
        return out

    @staticmethod
    def case_variance(
        model: EmbeddingModel, case: FDCase, config: FDConfig = FDConfig()
    ) -> float:
        """S^2 of one (table, dependency) case; None if no group is large enough.

        Within each determinant group, d_ji = ||E(x_cell) - E(y_cell)||_p is
        computed for every tuple; the per-group sample variance of the d_ji
        is averaged over groups.
        """
        table, fd = case.table, case.fd
        lhs, rhs = fd.determinant[0], fd.dependent[0]
        groups = fd_groups(table, fd)
        coords = [(r, c) for rows in groups.values() for r in rows for c in (lhs, rhs)]
        embedded = model.embed_cells(table, coords)
        group_variances: List[float] = []
        for rows in groups.values():
            distances = []
            for r in rows:
                x = embedded.get((r, lhs))
                y = embedded.get((r, rhs))
                if x is None or y is None:
                    continue  # cell truncated away by the input limit
                distances.append(float(np.linalg.norm(x - y, ord=config.norm)))
            if len(distances) >= config.min_group_size:
                group_variances.append(float(np.var(distances, ddof=1)))
        if not group_variances:
            return None
        return float(np.mean(group_variances))
