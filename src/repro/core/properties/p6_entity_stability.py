"""Property 6: Entity Stability.

Borrowed from word-embedding stability analysis: the agreement between two
embedding spaces is proxied by the overlap of the K nearest neighbours of
query entities.  Measure 6 (n=2 spaces) averages, over m sampled query
entities, |KNN_1(e) ∩ KNN_2(e)| / K.  The paper finds the *domain* of the
queries is a key factor — different model pairs agree on different domains
(Figure 12 heatmaps).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.levels import EmbeddingLevel
from repro.core.measures.knn import average_overlap_at_k
from repro.core.properties.base import PropertyRunner
from repro.core.results import PropertyResult
from repro.data.entities import EntityCatalog
from repro.errors import PropertyConfigError
from repro.models.base import EmbeddingModel
from repro.runtime.planner import as_executor


@dataclasses.dataclass(frozen=True)
class EntityStabilityConfig:
    """K for the neighbour sets and the domains to evaluate."""

    k: int = 10
    domains: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.k < 1:
            raise PropertyConfigError("k must be positive")


class EntityStability(PropertyRunner):
    """P6 runner: pairwise KNN-overlap stability between two models."""

    name = "entity_stability"
    levels = (EmbeddingLevel.ENTITY,)

    def run(
        self,
        model: Tuple[EmbeddingModel, EmbeddingModel],
        data: EntityCatalog,
        config: EntityStabilityConfig = EntityStabilityConfig(),
    ) -> PropertyResult:
        """Average per-domain stability between two entity embedding spaces.

        Scalars: ``stability/<domain>`` for each requested domain plus
        ``stability/overall`` across all query entities.
        """
        # Executors route each table's entity pass through the shared
        # embedding cache, so repeated pairings of the same model (every
        # Figure 12 heatmap cell) embed the catalog once.
        model_a, model_b = (as_executor(m) for m in model)
        for m in (model_a, model_b):
            if not m.supports(EmbeddingLevel.ENTITY):
                raise PropertyConfigError(
                    f"model {m.name!r} exposes no entity embeddings"
                )
        domains = config.domains or tuple(data.domains())
        unknown = set(domains) - set(data.domains())
        if unknown:
            raise PropertyConfigError(f"unknown domains: {sorted(unknown)}")
        space_a = data.embedding_space(model_a)
        space_b = data.embedding_space(model_b)
        result = PropertyResult(
            property_name=self.name,
            model_name=f"{model_a.name}|{model_b.name}",
            metadata={"k": config.k, "domains": list(domains), "n_entities": len(data)},
        )
        all_queries: List[int] = []
        for domain in domains:
            queries = data.query_indices(domain)
            all_queries.extend(queries)
            result.scalars[f"stability/{domain}"] = average_overlap_at_k(
                space_a, space_b, queries, config.k
            )
        result.scalars["stability/overall"] = average_overlap_at_k(
            space_a, space_b, all_queries, config.k
        )
        return result

    @staticmethod
    def pairwise_matrix(
        models: Sequence[EmbeddingModel],
        data: EntityCatalog,
        domain: str,
        config: EntityStabilityConfig = EntityStabilityConfig(),
    ) -> np.ndarray:
        """Symmetric [n_models, n_models] stability matrix for one domain.

        This is the data behind one Figure 12 heatmap; the diagonal is 1 by
        construction (a space agrees perfectly with itself).
        """
        spaces = [data.embedding_space(as_executor(m)) for m in models]
        queries = data.query_indices(domain)
        n = len(models)
        matrix = np.eye(n)
        for i in range(n):
            for j in range(i + 1, n):
                value = average_overlap_at_k(spaces[i], spaces[j], queries, config.k)
                matrix[i, j] = matrix[j, i] = value
        return matrix
