"""Property registry: name -> runner factory.

Mirrors the model registry; :func:`register_property` is the extension
point for adding new properties to the framework.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.properties import (
    ColumnOrderInsignificance,
    EntityStability,
    FunctionalDependencies,
    HeterogeneousContext,
    JoinRelationship,
    PerturbationRobustness,
    RowOrderInsignificance,
    SampleFidelity,
)
from repro.core.properties.base import PropertyRunner
from repro.errors import PropertyConfigError

PropertyFactory = Callable[[], PropertyRunner]

_REGISTRY: Dict[str, PropertyFactory] = {
    "row_order_insignificance": RowOrderInsignificance,
    "column_order_insignificance": ColumnOrderInsignificance,
    "join_relationship": JoinRelationship,
    "functional_dependencies": FunctionalDependencies,
    "sample_fidelity": SampleFidelity,
    "entity_stability": EntityStability,
    "perturbation_robustness": PerturbationRobustness,
    "heterogeneous_context": HeterogeneousContext,
}

# Paper ordering (P1..P8) for reports.
PAPER_ORDER = (
    "row_order_insignificance",
    "column_order_insignificance",
    "join_relationship",
    "functional_dependencies",
    "sample_fidelity",
    "entity_stability",
    "perturbation_robustness",
    "heterogeneous_context",
)


def available_properties() -> List[str]:
    """Registered property names in paper order, extensions last."""
    builtin = [n for n in PAPER_ORDER if n in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(builtin))
    return builtin + extras


def load_property(name: str) -> PropertyRunner:
    """Instantiate a property runner by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise PropertyConfigError(
            f"unknown property {name!r}; available: {', '.join(available_properties())}"
        ) from None
    return factory()


def register_property(
    name: str, factory: PropertyFactory, *, overwrite: bool = False
) -> None:
    """Register a new property runner (the framework's extension point)."""
    if name in _REGISTRY and not overwrite:
        raise PropertyConfigError(f"property {name!r} already registered")
    _REGISTRY[name] = factory


def unregister_property(name: str) -> None:
    """Remove a registered property (primarily for tests)."""
    _REGISTRY.pop(name, None)
