"""Levels of table embeddings (Definition 1 of the paper).

Different downstream applications consume different aggregations of a
table's representation; Observatory properties each declare which levels
they characterize.
"""

from __future__ import annotations

import enum


class EmbeddingLevel(enum.Enum):
    """The five levels of table embeddings Observatory distinguishes."""

    TABLE = "table"
    COLUMN = "column"
    ROW = "row"
    CELL = "cell"
    ENTITY = "entity"

    def __str__(self) -> str:  # nicer in reports
        return self.value
