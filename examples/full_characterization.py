"""Full characterization: the paper's Section 5 analysis in one table.

Runs every applicable (model, property) cell at a small scale and renders
the markdown matrix a practitioner would skim when selecting a model —
each cell is the property's headline statistic (median cosine, Spearman
rho, mean S^2, …), with cells outside the paper's Table 2 scope left blank.

The matrix is executed through ``Observatory.sweep`` — the batched/cached
characterization runtime — so shared tables are embedded once, every
skipped cell is reported with its reason, and re-running the script with a
``--disk-cache``-style persistent cache would be nearly free.  Pass
``RuntimeConfig(enabled=False)`` to ``Observatory`` to feel the legacy
one-call-at-a-time execution for comparison.

Usage::

    python examples/full_characterization.py            # four models
    python examples/full_characterization.py bert t5    # chosen models
"""

import sys

from repro import RuntimeConfig
from repro.analysis.report import render_sweep
from repro.core.framework import DatasetSizes, Observatory


def main() -> None:
    models = sys.argv[1:] or ["bert", "t5", "tabert", "doduo"]
    observatory = Observatory(
        seed=0,
        sizes=DatasetSizes(
            wikitables_tables=8,
            spider_databases=3,
            nextiajd_pairs=30,
            sotab_tables=12,
            n_permutations=6,
        ),
        runtime=RuntimeConfig(batch_size=16),
    )
    print(f"Characterizing {', '.join(models)} across the property suite…\n")
    sweep = observatory.sweep(models)
    print(render_sweep(sweep))
    print(
        "\nReading guide: P1/P2/P5/P7/P8 cells are median cosine similarities "
        "(higher = more invariant); P3 is Spearman rho against multiset "
        "Jaccard (higher = overlap-faithful); P4 is the mean FD-translation "
        "variance (lower = closer to preserving FDs); — marks cells the "
        "sweep skipped (out of scope for the model, or pairwise like P6)."
    )


if __name__ == "__main__":
    main()
