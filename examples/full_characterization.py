"""Full characterization: the paper's Section 5 analysis in one table.

Runs every applicable (model, property) cell at a small scale and renders
the markdown matrix a practitioner would skim when selecting a model —
each cell is the property's headline statistic (median cosine, Spearman
rho, mean S^2, …), with cells outside the paper's Table 2 scope left blank.

Usage::

    python examples/full_characterization.py            # three models
    python examples/full_characterization.py bert t5    # chosen models
"""

import sys

from repro.analysis.report import full_characterization, render_markdown
from repro.core.framework import DatasetSizes, Observatory


def main() -> None:
    models = sys.argv[1:] or ["bert", "t5", "tabert", "doduo"]
    observatory = Observatory(
        seed=0,
        sizes=DatasetSizes(
            wikitables_tables=8,
            spider_databases=3,
            nextiajd_pairs=30,
            sotab_tables=12,
            n_permutations=6,
        ),
    )
    print(f"Characterizing {', '.join(models)} across the property suite…\n")
    matrix = full_characterization(observatory, models=models)
    print(render_markdown(matrix))
    print(
        "\nReading guide: P1/P2/P5/P7/P8 cells are median cosine similarities "
        "(higher = more invariant); P3 is Spearman rho against multiset "
        "Jaccard (higher = overlap-faithful); P4 is the mean FD-translation "
        "variance (lower = closer to preserving FDs); — marks out-of-scope "
        "cells per the paper's Table 2."
    )


if __name__ == "__main__":
    main()
