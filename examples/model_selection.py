"""Model selection: pick an embedding model for a downstream task.

The paper's motivating scenario — a practitioner chooses between models by
comparing property profiles instead of trial and error.  This script
compares three candidates for a *join discovery over unordered tables*
workload, which cares about: row-order insignificance (tables arrive
unordered), sample fidelity (large columns get sampled), and the
join-relationship correlation (embedding similarity should track value
overlap).

Usage::

    python examples/model_selection.py
"""

from repro import Observatory
from repro.core.framework import DatasetSizes

CANDIDATES = ("bert", "t5", "doduo")


def main() -> None:
    observatory = Observatory(
        seed=0,
        sizes=DatasetSizes(
            wikitables_tables=8, nextiajd_pairs=40, n_permutations=8
        ),
    )

    scores = {}
    print("Scoring candidates on three task-relevant properties…\n")
    for name in CANDIDATES:
        row_order = observatory.characterize(name, "row_order_insignificance")
        fidelity = observatory.characterize(name, "sample_fidelity")
        join = observatory.characterize(name, "join_relationship")
        profile = {
            "row_order_median_cosine": row_order.distribution("column/cosine").median,
            "fidelity_at_0.25": fidelity.distribution("ratio_0.25/fidelity").median,
            "join_spearman_mj": join.scalars["spearman/multiset_jaccard"],
        }
        scores[name] = profile
        print(f"{name}:")
        for metric, value in profile.items():
            print(f"  {metric:26s} {value:.3f}")
        print()

    def overall(profile: dict) -> float:
        return sum(profile.values()) / len(profile)

    ranked = sorted(scores, key=lambda n: overall(scores[n]), reverse=True)
    print("Ranking for the join-discovery workload:", " > ".join(ranked))
    print(
        f"\nRecommendation: use {ranked[0]!r}. "
        f"({ranked[-1]!r} trails mainly because its embeddings are sensitive "
        "to row order and sampling — the paper's DODUO finding.)"
    )


if __name__ == "__main__":
    main()
