"""Quickstart: characterize a model with one Observatory property.

Runs row-order insignificance (P1) for BERT over a small WikiTables-like
corpus and prints the cosine/MCV distributions per embedding level — the
numbers behind one cell of the paper's Figure 5.

Usage::

    python examples/quickstart.py
"""

from repro import Observatory
from repro.core.framework import DatasetSizes


def main() -> None:
    observatory = Observatory(
        seed=0,
        sizes=DatasetSizes(wikitables_tables=8, n_permutations=8),
    )

    from repro import available_models, available_properties

    print("models:    ", ", ".join(available_models()))
    print("properties:", ", ".join(available_properties()))
    print()

    result = observatory.characterize("bert", "row_order_insignificance")
    print(f"P1 row-order insignificance for {result.model_name!r}")
    print(f"  corpus: {result.metadata['corpus']} ({result.metadata['n_tables']} tables, "
          f"{result.metadata['n_permutations']} permutations each)")
    for key in sorted(result.distributions):
        stats = result.distributions[key]
        print(f"  {key:16s} {stats}")

    column_cosine = result.distribution("column/cosine")
    print()
    print(
        "Interpretation: BERT column embeddings barely move under row "
        f"shuffling (median cosine {column_cosine.median:.3f}) — row order "
        "is insignificant to BERT, as the paper finds."
    )


if __name__ == "__main__":
    main()
