"""FD probe: mine functional dependencies and test them in embedding space.

Walks through Property 4 on a single table: discover unary FDs with the
HyFD-style miner, compute the group-wise translation variance S^2 per
(model, dependency), and contrast it with a violating column pair — the
paper's conclusion being that embeddings do *not* preserve FDs as stable
translations.

Usage::

    python examples/fd_probe.py
"""

from repro import Table, load_model
from repro.core.properties import FunctionalDependencies
from repro.data.spider import FDCase
from repro.relational.fd import FunctionalDependency, fd_groups
from repro.relational.fd_discovery import discover_unary_fds, non_fd_column_pairs


def main() -> None:
    # The paper's Figure 3 example, extended: country -> continent holds.
    table = Table.from_columns(
        [
            ("city", ["Amsterdam", "Rotterdam", "Utrecht", "Toronto", "Ottawa",
                      "New York", "Chicago", "Boston"]),
            ("country", ["Netherlands", "Netherlands", "Netherlands", "Canada",
                         "Canada", "USA", "USA", "USA"]),
            ("continent", ["Europe", "Europe", "Europe", "North America",
                           "North America", "North America", "North America",
                           "North America"]),
            ("population", [821, 623, 345, 2731, 934, 8336, 2746, 675]),
        ],
        table_id="fd-example",
    )
    print(table.to_markdown())
    print()

    discovered = discover_unary_fds(table)
    print("Discovered unary FDs:")
    for fd in discovered:
        groups = fd_groups(table, fd)
        sizes = sorted((len(rows) for rows in groups.values()), reverse=True)
        print(f"  {fd.describe(table):32s} groups={sizes}")
    print()

    runner = FunctionalDependencies()
    target = FunctionalDependency.unary(1, 2)  # country -> continent
    violating = non_fd_column_pairs(table, 1)[0]
    control = FunctionalDependency.unary(*violating)

    print(f"{'model':8s} {'S2 (country->continent)':>26s} "
          f"{'S2 (' + control.describe(table) + ')':>30s}")
    for name in ("bert", "tapas", "doduo"):
        model = load_model(name)
        s2_fd = runner.case_variance(model, FDCase(table, target, holds=True))
        s2_ctl = runner.case_variance(model, FDCase(table, control, holds=False))
        print(f"{name:8s} {s2_fd:26.4f} {s2_ctl:30.4f}")

    print(
        "\nIf embeddings preserved FDs as translations, the left column "
        "would be ~0 and clearly below the right one. It is not — the "
        "paper's Property 4 finding."
    )


if __name__ == "__main__":
    main()
