"""Join discovery: find joinable columns with sampled embeddings.

Reproduces the Section 6 (P5) workflow end to end: build an embedding index
over candidate columns, retrieve join candidates for queries, then repeat
with ~5%-sampled columns and compare quality and cost — the sample-efficient
join discovery the paper demonstrates with T5.

Usage::

    python examples/join_discovery.py
"""

from repro import load_model
from repro.data.nextiajd import NextiaJDGenerator, Testbed
from repro.downstream.join_discovery import JoinDiscoveryIndex, evaluate_join_discovery


def main() -> None:
    model = load_model("t5")
    generator = NextiaJDGenerator(seed=13)
    pairs = generator.generate_pairs(20, Testbed.S)

    # Manual indexing walk-through for the first few candidates.
    index = JoinDiscoveryIndex(model.dim)
    for pair in pairs[:8]:
        index.add(
            pair.pair_id,
            model.embed_value_column(pair.candidate_header, list(pair.candidate_values)),
        )
    query = pairs[0]
    query_embedding = model.embed_value_column(
        query.query_header, list(query.query_values)
    )
    print(f"Query column {query.query_header!r} "
          f"({len(query.query_values)} values) — top 3 candidates:")
    for key, score in index.lookup(query_embedding, 3):
        print(f"  {key:8s} cosine={score:.3f}")
    print()

    # Full sampled-vs-full comparison with timings.
    report = evaluate_join_discovery(model, pairs, k=5, sample_fraction=0.05)
    print("Sampled (5%) vs full-value join discovery:")
    print(" ", report.summary())
    print(
        "\nTakeaway: T5's high sample fidelity (P5) translates into join "
        "discovery that keeps its quality on a fraction of the data — "
        "indexing cost drops with the token count."
    )


if __name__ == "__main__":
    main()
