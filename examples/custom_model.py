"""Extensibility: analyze your own embedding model with Observatory.

The paper emphasizes that Observatory is extensible — "researchers and
practitioners can use Observatory for analysis of new models by specifying
the procedure of embedding inference following the implemented interface."
This script registers a deliberately naive bag-of-tokens model (no
positions, no context) and characterizes it alongside BERT: being
order-blind, it scores perfect row-order insignificance.

Usage::

    python examples/custom_model.py
"""

from typing import Dict, Sequence, Tuple

import numpy as np

from repro import Observatory, register_model
from repro.core.framework import DatasetSizes
from repro.core.levels import EmbeddingLevel
from repro.models.base import EmbeddingModel
from repro.models.registry import unregister_model
from repro.relational.table import Table
from repro.seeding import token_vector
from repro.text.tokenizer import Tokenizer


class BagOfTokensModel(EmbeddingModel):
    """Mean of token content vectors — no structure awareness at all."""

    name = "bag-of-tokens"
    dim = 64

    def __init__(self):
        self.tokenizer = Tokenizer()

    def supported_levels(self) -> frozenset:
        return frozenset(
            {EmbeddingLevel.COLUMN, EmbeddingLevel.ROW, EmbeddingLevel.TABLE}
        )

    def _pool(self, texts: Sequence[object]) -> np.ndarray:
        vectors = []
        for text in texts:
            for piece in self.tokenizer.tokenize("" if text is None else str(text)):
                vectors.append(token_vector(piece, self.dim))
        if not vectors:
            return np.zeros(self.dim)
        return np.mean(vectors, axis=0)

    def embed_columns(self, table: Table) -> np.ndarray:
        return np.stack(
            [
                self._pool([table.header[c]] + table.column_values(c))
                for c in range(table.num_columns)
            ]
        )

    def embed_rows(self, table: Table) -> np.ndarray:
        return np.stack([self._pool(row) for row in table.rows])

    def embed_table(self, table: Table) -> np.ndarray:
        return self._pool([cell for row in table.rows for cell in row])

    def embed_cells(self, table, coords) -> Dict[Tuple[int, int], np.ndarray]:
        return {(r, c): self._pool([table.cell(r, c)]) for r, c in coords}

    def embed_entities(self, table) -> Dict[str, np.ndarray]:
        return {
            entity_id: self._pool([table.cell(r, c)])
            for (r, c), entity_id in table.entity_links.items()
        }

    def embed_value_column(self, header: str, values) -> np.ndarray:
        return self._pool([header] + list(values))


def main() -> None:
    register_model("bag-of-tokens", BagOfTokensModel, overwrite=True)
    try:
        observatory = Observatory(
            seed=0, sizes=DatasetSizes(wikitables_tables=6, n_permutations=6)
        )
        print("Row-order insignificance, custom model vs BERT:\n")
        for name in ("bag-of-tokens", "bert"):
            result = observatory.characterize(name, "row_order_insignificance")
            stats = result.distribution("column/cosine")
            print(f"  {name:14s} column cosine: median={stats.median:.4f} "
                  f"min={stats.minimum:.4f}")
        print(
            "\nThe bag-of-tokens model is order-blind by construction, so its "
            "cosine similarity is exactly 1 under every shuffle — Observatory "
            "confirms it without any model-specific code."
        )
    finally:
        unregister_model("bag-of-tokens")


if __name__ == "__main__":
    main()
