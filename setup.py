"""Packaging via classic setup.py.

A pyproject.toml is deliberately absent: its presence switches pip to
PEP 517 builds with build isolation, which requires network access to fetch
build dependencies.  The classic path (``setup.py develop``) keeps
``pip install -e .`` fully offline; pytest configuration lives in
pytest.ini and the lint configuration in ruff.toml.

The ``dev`` extra pins the toolchain CI uses (see
``.github/workflows/ci.yml``) so local ``pip install -e .[dev]`` runs the
same pytest/ruff versions as the pipeline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Observatory: a framework for characterizing embeddings of "
        "relational tables (VLDB 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={
        "dev": [
            "pytest>=8,<10",
            "pytest-benchmark>=4,<6",
            "hypothesis>=6,<7",
            "ruff>=0.5,<0.15",
        ],
    },
)
