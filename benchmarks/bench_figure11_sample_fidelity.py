"""Figure 11: sample fidelity distributions at ratios 0.25 / 0.5 / 0.75.

Regenerates the per-model fidelity quartiles across the three sampling
fractions and asserts the paper's shape: fidelity rises with the ratio for
every model, vanilla LMs sit high, TaBERT is the most sample-robust model
(its first-3-rows content snapshot), and DODUO lags at every ratio.
"""


from benchmarks._common import FIGURE11_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table

RATIOS = (0.25, 0.5, 0.75)


def run_figure11():
    grid = {}
    for name in FIGURE11_MODELS:
        result = characterize(name, "sample_fidelity")
        grid[name] = {
            ratio: result.distributions[f"ratio_{ratio}/fidelity"]
            for ratio in RATIOS
        }
    return grid


def test_figure11_sample_fidelity(benchmark):
    grid = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    print_header("Figure 11: sample fidelity (median [q1]) by ratio")
    rows = []
    for name in FIGURE11_MODELS:
        row = [name]
        for ratio in RATIOS:
            stats = grid[name][ratio]
            row.append(f"{stats.median:.3f} [{stats.q1:.3f}]")
        rows.append(row)
    print(format_value_table(rows, ["model"] + [f"ratio {r}" for r in RATIOS]))

    for name in FIGURE11_MODELS:
        medians = [grid[name][r].median for r in RATIOS]
        assert medians == sorted(medians), name  # monotone in ratio
    at_25 = {name: grid[name][0.25].median for name in FIGURE11_MODELS}
    # Vanilla LMs show high fidelity already at 0.25.
    for name in ("bert", "roberta", "t5"):
        assert at_25[name] > 0.85, name
    # TaBERT's snapshot makes it the most robust table model; DODUO lags.
    assert at_25["tabert"] > 0.9
    assert at_25["doduo"] == min(at_25.values())
