"""Runtime benchmark: batched/cached ``Observatory.sweep`` vs legacy path.

Measures the characterization runtime on the default benchmark matrix
(2 models x 4 properties) in three configurations:

1. **naive** — sequential ``characterize`` calls with the runtime disabled
   (``RuntimeConfig(enabled=False)``): one encoder pass per level per
   variant, no deduplication, no cache.  This is the pre-runtime compute
   profile.
2. **cold sweep** — ``Observatory.sweep`` with an empty cache: levels are
   bundled into one encoder pass per variant, requests are deduplicated by
   content hash, short sequences are batch-encoded.
3. **warm sweep** — the same sweep again on the primed cache: the
   re-characterization a practitioner triggers every time they iterate on
   analysis code, add a measure, or regenerate a report over unchanged
   data.  Only fingerprinting and the measures themselves are recomputed.

It then measures **process-sharded execution**
(``Observatory.sweep(execution="process")``): cells spread across spawned
worker processes sharing an on-disk cache tier, which scales the
GIL-bound Python half of the matrix past one core.  Reported as
single-process vs multi-process wall-clock (thread-vs-process scaling);
on a single-core host the sharded run degenerates to spawn overhead and
the report says so.

Reported speedups: cold (architecture only), warm (cache), and the
two-pass analysis workflow (characterize once, re-characterize once) —
the workflow number is the headline the runtime targets (>= 3x); the cold
number guards the architectural win on its own.  All configurations —
including every process shard count — must produce numerically identical
``PropertyResult`` measures.

Usage::

    python benchmarks/bench_runtime_sweep.py                       # full benchmark
    python benchmarks/bench_runtime_sweep.py --smoke               # tiny CI gate
    python benchmarks/bench_runtime_sweep.py --smoke --execution process

The ``--smoke`` mode runs in seconds and only asserts the invariants CI
can check on shared hardware: identical results, an overall cache hit
rate above 45% across the two sweeps, and (thread engine) a cached sweep
no slower than the naive baseline.  ``--execution process`` points the
smoke gate at the process engine instead: identical results plus a warm
disk-tier hit rate, with no wall-clock gate (spawn cost is hardware
noise).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro import Observatory, RuntimeConfig
from repro.analysis.reporting import format_value_table
from repro.core.framework import DatasetSizes
from repro.core.results import PropertyResult
from repro.runtime.cache import CacheStats

MODELS = ["bert", "tapas"]
PROPERTIES = [
    "row_order_insignificance",
    "column_order_insignificance",
    "perturbation_robustness",
    "heterogeneous_context",
]

FULL_SIZES = DatasetSizes(
    wikitables_tables=8,
    sotab_tables=10,
    n_permutations=8,
    min_rows=14,
    max_rows=20,
)
SMOKE_SIZES = DatasetSizes(
    wikitables_tables=3,
    sotab_tables=4,
    n_permutations=4,
    min_rows=5,
    max_rows=7,
)
WARMUP_SIZES = DatasetSizes(
    wikitables_tables=2,
    sotab_tables=2,
    n_permutations=2,
    min_rows=4,
    max_rows=5,
)


def run_naive(sizes: DatasetSizes) -> Tuple[float, Dict[Tuple[str, str], PropertyResult]]:
    observatory = Observatory(
        seed=0, sizes=sizes, runtime=RuntimeConfig(enabled=False)
    )
    started = time.perf_counter()
    results = {
        (model, prop): observatory.characterize(model, prop)
        for model in MODELS
        for prop in PROPERTIES
    }
    return time.perf_counter() - started, results


def run_sweeps(sizes: DatasetSizes):
    observatory = Observatory(seed=0, sizes=sizes, runtime=RuntimeConfig(batch_size=16))
    started = time.perf_counter()
    cold = observatory.sweep(MODELS, PROPERTIES, execution="thread")
    t_cold = time.perf_counter() - started
    started = time.perf_counter()
    warm = observatory.sweep(MODELS, PROPERTIES, execution="thread")
    t_warm = time.perf_counter() - started
    return t_cold, cold, t_warm, warm, observatory.cache.stats


def run_process_sweep(sizes: DatasetSizes, disk_dir: str, workers: int):
    """One process-sharded sweep sharing ``disk_dir`` as the cache tier."""
    observatory = Observatory(
        seed=0,
        sizes=sizes,
        runtime=RuntimeConfig(batch_size=16, disk_cache_dir=disk_dir),
    )
    started = time.perf_counter()
    sweep = observatory.sweep(
        MODELS, PROPERTIES, max_workers=workers, execution="process"
    )
    return time.perf_counter() - started, sweep


def run_process_scaling(sizes: DatasetSizes):
    """Cold single-shard vs cold multi-shard process sweeps + a warm pass.

    Each cold run uses a fresh disk dir so shard counts are compared on
    equal (empty-cache) footing; the warm pass reuses the multi-shard
    dir to measure the shared disk tier across process boundaries.
    """
    multi = min(4, os.cpu_count() or 1, len(MODELS) * len(PROPERTIES))
    with tempfile.TemporaryDirectory() as single_dir:
        t_single, single = run_process_sweep(sizes, single_dir, workers=1)
    with tempfile.TemporaryDirectory() as multi_dir:
        t_multi, cold = run_process_sweep(sizes, multi_dir, workers=multi)
        t_warm, warm = run_process_sweep(sizes, multi_dir, workers=multi)
    return {
        "single_workers": 1,
        "multi_workers": multi,
        "t_single": t_single,
        "t_multi": t_multi,
        "t_warm": t_warm,
        "single": single,
        "cold": cold,
        "warm": warm,
    }


def check_identical(
    naive: Dict[Tuple[str, str], PropertyResult], sweep
) -> None:
    for cell in sweep.cells:
        expected = naive[(cell.model_name, cell.property_name)].to_dict()
        actual = cell.result.to_dict()
        if expected != actual:
            raise AssertionError(
                f"results diverged for ({cell.model_name}, {cell.property_name})"
            )


def warmup() -> None:
    """Amortize one-time costs (imports, shared content-vector cache) so the
    timed configurations start from the same warmth."""
    for enabled in (False, True):
        observatory = Observatory(
            seed=0, sizes=WARMUP_SIZES, runtime=RuntimeConfig(enabled=enabled)
        )
        for prop in PROPERTIES:
            observatory.characterize(MODELS[0], prop)


def report_process_scaling(scaling: Dict[str, object]) -> None:
    cores = os.cpu_count() or 1
    t_single, t_multi = scaling["t_single"], scaling["t_multi"]
    multi = scaling["multi_workers"]
    shards = f"{multi} shard{'s' if multi != 1 else ''}"
    rows = [
        ["process sweep, 1 shard (cold)", t_single, 1.0],
        [f"process sweep, {shards} (cold)", t_multi, t_single / t_multi],
        [
            f"process sweep, {shards} (warm disk tier)",
            scaling["t_warm"],
            t_single / scaling["t_warm"],
        ],
    ]
    print()
    print(f"Thread-vs-process scaling ({cores} core(s) available):")
    print(format_value_table(rows, ["configuration", "seconds", "scaling"]))
    if cores < 2:
        print(
            "note: single-core host — process sharding can only add spawn "
            "overhead here; scaling numbers are meaningful on >= 2 cores."
        )
    warm_stats: CacheStats = scaling["warm"].cache_stats
    print(
        f"shared disk tier: {warm_stats.disk_hits} cross-process disk hits "
        f"on the warm pass ({warm_stats.hit_rate:.1%} hit rate)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes + hardware-independent assertions (CI gate)",
    )
    parser.add_argument(
        "--execution",
        choices=["thread", "process"],
        default="thread",
        help="which sweep engine the smoke gate exercises (default: thread)",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES

    warmup()
    t_naive, naive_results = run_naive(sizes)

    if args.execution == "process":
        scaling = run_process_scaling(sizes)
        for sweep in (scaling["single"], scaling["cold"], scaling["warm"]):
            check_identical(naive_results, sweep)
        print()
        print("=" * 72)
        print(
            f"Runtime sweep benchmark (process engine) — "
            f"{len(MODELS)} models x {len(PROPERTIES)} properties"
        )
        print("=" * 72)
        report_process_scaling(scaling)
        print("results: numerically identical across all shard counts")
        if args.smoke:
            combined = CacheStats.merged(
                [scaling["cold"].cache_stats, scaling["warm"].cache_stats]
            )
            assert combined.hit_rate > 0.45, (
                f"shared disk tier ineffective: hit rate {combined.hit_rate:.1%}"
            )
            assert scaling["warm"].cache_stats.disk_hits > 0, (
                "warm process sweep never hit the shared disk tier"
            )
        print("benchmark assertions passed")
        return 0

    t_cold, cold, t_warm, warm, cache_stats = run_sweeps(sizes)
    check_identical(naive_results, cold)
    check_identical(naive_results, warm)

    cold_speedup = t_naive / t_cold
    warm_speedup = t_naive / t_warm
    workflow_speedup = (2 * t_naive) / (t_cold + t_warm)

    rows = [
        ["naive sequential (runtime off)", t_naive, 1.0],
        ["cold sweep (batched + cached)", t_cold, cold_speedup],
        ["warm sweep (re-characterize)", t_warm, warm_speedup],
        ["two-pass workflow", t_cold + t_warm, workflow_speedup],
    ]
    print()
    print("=" * 72)
    print(f"Runtime sweep benchmark — {len(MODELS)} models x {len(PROPERTIES)} properties")
    print("=" * 72)
    print(format_value_table(rows, ["configuration", "seconds", "speedup"]))
    print()
    print(f"cache: {cache_stats}")
    print("results: numerically identical across all configurations")

    if not args.smoke:
        scaling = run_process_scaling(sizes)
        for sweep in (scaling["single"], scaling["cold"], scaling["warm"]):
            check_identical(naive_results, sweep)
        report_process_scaling(scaling)

    if args.smoke:
        assert t_cold <= t_naive * 1.05, (
            f"cached sweep slower than naive baseline: {t_cold:.2f}s vs {t_naive:.2f}s"
        )
        assert cache_stats.hit_rate > 0.45, (
            f"cache ineffective: hit rate {cache_stats.hit_rate:.1%}"
        )
    else:
        assert cold_speedup >= 2.0, f"cold sweep speedup {cold_speedup:.2f}x < 2x"
        assert workflow_speedup >= 3.0, (
            f"two-pass workflow speedup {workflow_speedup:.2f}x < 3x"
        )
    print("benchmark assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
