"""Runtime benchmark: batched/cached ``Observatory.sweep`` vs legacy path.

Measures the characterization runtime on the default benchmark matrix
(2 models x 4 properties) in three configurations:

1. **naive** — sequential ``characterize`` calls with the runtime disabled
   (``RuntimeConfig(enabled=False)``): one encoder pass per level per
   variant, no deduplication, no cache.  This is the pre-runtime compute
   profile.
2. **cold sweep** — ``Observatory.sweep`` with an empty cache: levels are
   bundled into one encoder pass per variant, requests are deduplicated by
   content hash, short sequences are batch-encoded.
3. **warm sweep** — the same sweep again on the primed cache: the
   re-characterization a practitioner triggers every time they iterate on
   analysis code, add a measure, or regenerate a report over unchanged
   data.  Only fingerprinting and the measures themselves are recomputed.

It then measures **process execution**
(``Observatory.sweep(execution="process")``): cells spread across spawned
worker processes sharing an on-disk cache tier, which scales the
GIL-bound Python half of the matrix past one core.  Reported as
single-process vs multi-process wall-clock (thread-vs-process scaling);
on a single-core host the run degenerates to spawn overhead and the
report says so.

The **scheduler** section compares the two process engines head-to-head
on fresh disk tiers: the retained static-shard oracle
(:class:`ProcessShardedSweep`, one-shot ``pool.map`` over fixed shards)
vs the work-stealing scheduler (:class:`WorkStealingSweep`, LPT-ordered
corpus-affinity groups pulled by persistent workers).  Results are
asserted bit-identical first; the record then carries the dispatch log,
steal/re-dispatch/crash counts, per-worker busy fractions, and the
measured per-cell seconds as ``scheduler.cell_records`` — the
telemetry priors a later sweep reloads via ``--cost-priors`` /
``$REPRO_SWEEP_COST_PRIORS`` for LPT dispatch.  The process smoke gate
bounds scheduler overhead at 5% over static sharding (plus a small
absolute slack for spawn jitter: on a 1-core CI runner both engines are
pure overhead, so the gate is about the dispatch loop staying cheap,
not about scaling).

Reported speedups: cold (architecture only), warm (cache), and the
two-pass analysis workflow (characterize once, re-characterize once) —
the workflow number is the headline the runtime targets (>= 3x); the cold
number guards the architectural win on its own.  All configurations —
including every process shard count — must produce numerically identical
``PropertyResult`` measures.

It also measures the **encoder-backend tiers**: exact same-length
batching vs padded tolerance-tier batching on a heterogeneous-length
corpus where every sequence has a distinct token length (same-length
grouping degenerates to batch-size-1 there), plus the **streaming
pipeline**: cold sweeps with async encode on vs off, reporting how much
encode time overlapped foreground CPU work.

The **remote transport** section encodes a corpus through
:class:`RemoteBackend` against the in-process loopback service double
(a real local backend behind the HTTP wire), asserts bit-identity, and
records the transport overhead (round trips, bytes, latency-aware chunk
suggestion) into the JSON record — no gate: on a loopback link the wire
is pure overhead by construction.

The **columnar token plane** section times serialization and aggregation
on the interned-id array path against the frozen PR 3 Token-object path
(``serialize_tokens`` + :mod:`repro.models.reference_plane`), asserting
the outputs bit-identical first.  The cold sweep's telemetry-measured
per-phase totals (serialize/encode/aggregate seconds) land in the JSON
record as ``phase_seconds``; the full (non-smoke) run gates the combined
serialize+aggregate speedup at >= 1.5x — smoke stays ungated because
1-core CI timing is too noisy for a fresh phase gate.

Usage::

    python benchmarks/bench_runtime_sweep.py                       # full benchmark
    python benchmarks/bench_runtime_sweep.py --smoke               # tiny CI gate
    python benchmarks/bench_runtime_sweep.py --smoke --execution process
    python benchmarks/bench_runtime_sweep.py --smoke --json BENCH_smoke.json

The ``--smoke`` mode runs in seconds and only asserts the invariants CI
can check on shared hardware: identical results, an overall cache hit
rate above 45% across the two sweeps, a cached sweep no slower than the
naive baseline, a two-pass workflow at least 3.5x over naive, padded
batching no slower than exact on the degenerate corpus, and padded
numerics inside the documented tolerance.  ``--execution process``
points the smoke gate at the process engine instead: identical results,
a warm disk-tier hit rate, complete dispatch telemetry, and the
scheduler-overhead bound vs static sharding (no thread-vs-process
wall-clock gate — spawn cost is hardware noise).  ``--json PATH``
writes every timing, speedup, and the
host fingerprint to a machine-readable record so CI can track the perf
trajectory per push.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro import Observatory, RuntimeConfig
from repro.analysis.reporting import format_value_table
from repro.core.framework import DatasetSizes
from repro.core.results import PropertyResult
from repro.models.backends import (
    FLOAT32_TOLERANCE,
    LocalBackend,
    PaddedBackend,
    RemoteBackend,
    TransportConfig,
    max_relative_error,
)
from repro.models.registry import load_model
from repro.relational.table import Table
from repro.runtime.cache import CacheStats

MODELS = ["bert", "tapas"]
PROPERTIES = [
    "row_order_insignificance",
    "column_order_insignificance",
    "perturbation_robustness",
    "heterogeneous_context",
]

FULL_SIZES = DatasetSizes(
    wikitables_tables=8,
    sotab_tables=10,
    n_permutations=8,
    min_rows=14,
    max_rows=20,
)
SMOKE_SIZES = DatasetSizes(
    wikitables_tables=3,
    sotab_tables=4,
    n_permutations=4,
    min_rows=5,
    max_rows=7,
)
WARMUP_SIZES = DatasetSizes(
    wikitables_tables=2,
    sotab_tables=2,
    n_permutations=2,
    min_rows=4,
    max_rows=5,
)


def time_best(fn, *, trials: int, repeats: int) -> float:
    """Best-of-``trials`` wall time of ``repeats`` back-to-back calls."""
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Encoder-backend comparison: exact same-length vs padded tolerance tiers
# ----------------------------------------------------------------------

_WORDS = [
    "alpha", "bravo", "delta", "echo", "golf", "hotel", "india", "kilo",
    "lima", "mike", "oscar", "papa", "romeo", "sierra", "tango", "victor",
]


def heterogeneous_corpus(model, max_length: int = 32) -> List[Table]:
    """Narrow standalone columns whose token lengths are all *distinct*.

    This is the workload padded batching exists for: every sequence has a
    different length, so exact same-length grouping degenerates to
    batch-size-1 (the EmbDI-style heterogeneous-corpus regime), while
    tolerance tiers still form real batches.  Lengths are kept short —
    under ``max_length`` tokens — because that is where batching pays on
    CPU (past ~48 tokens the stacked attention temporaries leave cache).
    """
    tables: List[Table] = []
    seen: set = set()
    i = 0
    for k in (1, 2, 3, 4):
        for extra in range(6):
            vals = [_WORDS[(i + j) % 16] for j in range(k)]
            for e in range(extra):
                vals[e % k] += " " + _WORDS[(i + e + 7) % 16]
            table = Table.from_columns([(_WORDS[i % 16], vals)])
            length = len(model._serializer.serialize(table))
            if length not in seen and length <= max_length:
                seen.add(length)
                tables.append(table)
            i += 1
    return tables


def run_backend_comparison(*, repeats: int = 6, trials: int = 3) -> Dict[str, object]:
    """Exact vs padded throughput on the heterogeneous-length corpus.

    Times ``encode_batch`` under both backends (best-of-``trials``, each
    timing ``repeats`` passes) and verifies the padded outputs stay within
    the documented tolerance of exact.
    """
    exact_model = load_model("bert")
    corpus = heterogeneous_corpus(exact_model)
    token_lists = [exact_model._serializer.serialize(t) for t in corpus]
    # Only the backend differs between the timed configurations; both
    # drive the same encoder instance.
    local: LocalBackend = exact_model.encoder.backend
    padded = PaddedBackend(tier_width=8)
    encoder = exact_model.encoder
    # Warm content-vector caches so both sides start equally hot.
    local.encode_batch(encoder, token_lists, 16)
    padded.encode_batch(encoder, token_lists, 16)
    t_exact = t_padded = float("inf")
    exact_states = padded_states = None
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(repeats):
            exact_states = local.encode_batch(encoder, token_lists, 16)
        t_exact = min(t_exact, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for _ in range(repeats):
            padded_states = padded.encode_batch(encoder, token_lists, 16)
        t_padded = min(t_padded, time.perf_counter() - t0)
    max_err = max(
        max_relative_error(p, e)
        for p, e in zip(padded_states, exact_states)
    )
    return {
        "sequences": len(token_lists),
        "lengths": sorted(len(t) for t in token_lists),
        "t_exact": t_exact,
        "t_padded": t_padded,
        "padded_speedup": t_exact / t_padded,
        "max_relative_error": max_err,
        "tolerance": padded.tolerance,
        "tier_width": padded.tier_width,
        "waste_ratio": padded.stats.waste_ratio,
    }


def report_backend_comparison(cmp: Dict[str, object]) -> None:
    rows = [
        ["local backend (exact, same-length only)", cmp["t_exact"], 1.0],
        ["padded backend (tolerance tiers)", cmp["t_padded"], cmp["padded_speedup"]],
    ]
    print()
    print(
        f"Exact vs padded batching — {cmp['sequences']} standalone columns, "
        f"all-distinct token lengths {cmp['lengths'][0]}..{cmp['lengths'][-1]}:"
    )
    print(format_value_table(rows, ["backend", "seconds", "speedup"]))
    print(
        f"padded numerics: max relative error {cmp['max_relative_error']:.1e} "
        f"(documented bound {cmp['tolerance']:.0e}), "
        f"padding waste {cmp['waste_ratio']:.1%} "
        f"(tier width {cmp['tier_width']})"
    )


# ----------------------------------------------------------------------
# Columnar token plane: interned-id arrays vs the PR 3 object path
# ----------------------------------------------------------------------


def token_plane_corpus(n_tables: int = 16) -> List[Table]:
    """Sweep-shaped tables (several columns, 14-20 rows of short text)."""
    tables: List[Table] = []
    for i in range(n_tables):
        n_rows = 14 + (i % 7)
        columns = []
        for c in range(4):
            values = [
                f"{_WORDS[(i + r + c) % 16]} {_WORDS[(i * 3 + r * 2 + c) % 16]}"
                if (r + c) % 3
                else (i * 100 + r * 10 + c)
                for r in range(n_rows)
            ]
            columns.append((f"{_WORDS[(i + c) % 16]} c{c}", values))
        tables.append(Table.from_columns(columns, table_id=f"plane-{i}"))
    return tables


def run_token_plane_comparison(*, repeats: int = 4, trials: int = 3) -> Dict[str, object]:
    """Serialize+aggregate on the columnar plane vs the frozen PR 3 path.

    The object path (``serialize_tokens`` + the per-token loops preserved
    in :mod:`repro.models.reference_plane`) *is* the PR 3 baseline, kept
    executable precisely so this comparison stays machine-relative.  Both
    paths run on the same corpus with warm tokenizer/interner caches, and
    their outputs are asserted bit-identical before any timing is trusted.
    """
    import numpy as np

    from repro.models import aggregate, reference_plane

    model = load_model("bert")
    serializer = model._serializer
    corpus = token_plane_corpus()
    # Warm every memo tier (tokenizer, interner, piece-id cache) so the
    # comparison measures steady-state sweep behaviour, not first-touch.
    arrays = [serializer.serialize(t) for t in corpus]
    objects = [serializer.serialize_tokens(t) for t in corpus]
    rng = np.random.default_rng(11)
    states = [rng.standard_normal((len(ta), model.dim)) for ta in arrays]

    # Correctness before speed: identical streams, identical aggregates.
    for ta, tokens, st_, table in zip(arrays, objects, states, corpus):
        assert ta.tokens() == tokens, "columnar serialization diverged from object path"
        assert np.array_equal(
            aggregate.column_embeddings(ta, st_, table.num_columns),
            reference_plane.column_embeddings_reference(tokens, st_, table.num_columns),
        )
        assert np.array_equal(
            aggregate.row_embeddings(ta, st_, table.num_rows),
            reference_plane.row_embeddings_reference(tokens, st_, table.num_rows),
        )
        assert np.array_equal(
            aggregate.table_embedding(ta, st_),
            reference_plane.table_embedding_reference(tokens, st_),
        )

    def serialize_columnar():
        for table in corpus:
            serializer.serialize(table)

    def serialize_objects():
        for table in corpus:
            serializer.serialize_tokens(table)

    def aggregate_columnar():
        for ta, st_, table in zip(arrays, states, corpus):
            aggregate.column_embeddings(ta, st_, table.num_columns)
            aggregate.row_embeddings(
                ta, st_, min(aggregate.embedded_row_count(ta), table.num_rows)
            )
            aggregate.table_embedding(ta, st_)

    def aggregate_objects():
        for tokens, st_, table in zip(objects, states, corpus):
            reference_plane.column_embeddings_reference(tokens, st_, table.num_columns)
            reference_plane.row_embeddings_reference(
                tokens,
                st_,
                min(reference_plane.embedded_row_count_reference(tokens), table.num_rows),
            )
            reference_plane.table_embedding_reference(tokens, st_)

    t_ser_col = time_best(serialize_columnar, trials=trials, repeats=repeats)
    t_ser_obj = time_best(serialize_objects, trials=trials, repeats=repeats)
    t_agg_col = time_best(aggregate_columnar, trials=trials, repeats=repeats)
    t_agg_obj = time_best(aggregate_objects, trials=trials, repeats=repeats)
    return {
        "tables": len(corpus),
        "tokens_total": sum(len(ta) for ta in arrays),
        "t_serialize_objects": t_ser_obj,
        "t_serialize_columnar": t_ser_col,
        "serialize_speedup": t_ser_obj / t_ser_col,
        "t_aggregate_objects": t_agg_obj,
        "t_aggregate_columnar": t_agg_col,
        "aggregate_speedup": t_agg_obj / t_agg_col,
        "combined_speedup": (t_ser_obj + t_agg_obj) / (t_ser_col + t_agg_col),
    }


def report_token_plane(cmp: Dict[str, object]) -> None:
    rows = [
        [
            "serialize: Token objects (PR 3 path)",
            cmp["t_serialize_objects"],
            1.0,
        ],
        ["serialize: columnar TokenArray", cmp["t_serialize_columnar"], cmp["serialize_speedup"]],
        ["aggregate: per-token loops (PR 3 path)", cmp["t_aggregate_objects"], 1.0],
        ["aggregate: masked reductions", cmp["t_aggregate_columnar"], cmp["aggregate_speedup"]],
    ]
    print()
    print(
        f"Columnar token plane — {cmp['tables']} tables, "
        f"{cmp['tokens_total']} tokens, outputs bit-identical:"
    )
    print(format_value_table(rows, ["phase / path", "seconds", "speedup"]))
    print(f"combined serialize+aggregate speedup: {cmp['combined_speedup']:.2f}x")


# ----------------------------------------------------------------------
# Remote transport: loopback HTTP encoding vs in-process local
# ----------------------------------------------------------------------


def run_remote_comparison(*, repeats: int = 2, trials: int = 2) -> Dict[str, object]:
    """Transport overhead of the remote backend against its loopback double.

    Encodes the token-plane corpus through the in-process local backend
    and through :class:`RemoteBackend` pointed at a
    :class:`~repro.testing.encoder_service.LoopbackEncoderService` (a real
    local backend behind the HTTP wire), asserting the outputs
    bit-identical before timing.  The interesting numbers are the
    serialization+HTTP overhead per chunk and the latency-aware chunk
    suggestion — on a loopback link the remote path is *expected* to be
    slower (every byte is pure overhead; the win only appears when the
    service has hardware the client lacks), so this section records, it
    does not gate.
    """
    import numpy as np

    from repro.testing import LoopbackEncoderService

    model = load_model("bert")
    encoder = model.encoder
    corpus = token_plane_corpus(8)
    token_lists = [model._serializer.serialize(t) for t in corpus]
    local = LocalBackend()
    local_states = local.encode_batch(encoder, token_lists, 16)

    with LoopbackEncoderService() as service:
        remote = RemoteBackend(service.url, timeout=30.0, retries=1)
        remote_states = remote.encode_batch(encoder, token_lists, 16)
        for local_arr, remote_arr in zip(local_states, remote_states):
            assert np.array_equal(local_arr, remote_arr), (
                "remote loopback encoding diverged from local"
            )
        t_local = time_best(
            lambda: local.encode_batch(encoder, token_lists, 16),
            trials=trials, repeats=repeats,
        )
        t_remote = time_best(
            lambda: remote.encode_batch(encoder, token_lists, 16),
            trials=trials, repeats=repeats,
        )
        stats = remote.stats_snapshot()
        suggested = remote.suggest_pipeline_chunk(8)
    return {
        "sequences": len(token_lists),
        "t_local": t_local,
        "t_remote": t_remote,
        "transport_overhead": t_remote / t_local,
        "chunks": stats.chunks,
        "mean_round_trip": stats.mean_round_trip,
        "bytes_sent": stats.bytes_sent,
        "bytes_received": stats.bytes_received,
        "suggested_pipeline_chunk": suggested,
    }


def report_remote_comparison(cmp: Dict[str, object]) -> None:
    rows = [
        ["local backend (in-process)", cmp["t_local"], 1.0],
        [
            "remote backend (loopback HTTP)",
            cmp["t_remote"],
            cmp["t_local"] / cmp["t_remote"],
        ],
    ]
    print()
    print(
        f"Remote transport overhead — {cmp['sequences']} sequences over "
        f"loopback HTTP, outputs bit-identical:"
    )
    print(format_value_table(rows, ["backend", "seconds", "speedup"]))
    print(
        f"transport: {cmp['chunks']} chunks, mean round-trip "
        f"{cmp['mean_round_trip'] * 1000.0:.1f}ms, "
        f"{cmp['bytes_sent']} B out / {cmp['bytes_received']} B in, "
        f"latency-aware chunk suggestion {cmp['suggested_pipeline_chunk']} "
        f"(loopback: overhead is expected — the win needs remote hardware)"
    )


# ----------------------------------------------------------------------
# Fleet transport: wire-tier bytes accounting + multi-replica routing
# ----------------------------------------------------------------------

# The four opt-in wire tiers, from bit-exact default to cheapest.
_WIRE_TIERS = (
    ("none/float64", {}),
    ("gzip/float64", {"compression": "gzip"}),
    ("none/float32", {"state_dtype": "float32"}),
    ("gzip/float32", {"compression": "gzip", "state_dtype": "float32"}),
)


def run_fleet_comparison() -> Dict[str, object]:
    """Bytes-on-wire per transport tier + multi-replica routing accounting.

    Two measurements share the token-plane corpus:

    1. *Wire tiers* — one single-replica loopback encode per
       {compression} x {state_dtype} combination, recording request and
       response bytes.  The exact float64 tier must stay bit-identical to
       the local backend; the float32 tier must stay inside
       :data:`FLOAT32_TOLERANCE`.  Gzip on base64 float64 states is
       entropy-bounded (random mantissas don't compress), so the gates
       target what gzip *can* win: the request side (token text, highly
       redundant) and the full opt-in tier (gzip + float32 together).
    2. *Fleet routing* — the same corpus through a 3-replica
       :class:`~repro.testing.encoder_service.FleetHarness`, recording
       per-replica round-trip counts from the stats snapshot.
    """
    import numpy as np

    from repro.testing import FleetHarness, LoopbackEncoderService

    model = load_model("bert")
    encoder = model.encoder
    corpus = token_plane_corpus(8)
    token_lists = [model._serializer.serialize(t) for t in corpus]
    local_states = LocalBackend().encode_batch(encoder, token_lists, 16)

    tiers: Dict[str, Dict[str, object]] = {}
    with LoopbackEncoderService() as service:
        for label, knobs in _WIRE_TIERS:
            backend = RemoteBackend(
                config=TransportConfig(urls=(service.url,), timeout=30.0, **knobs),
                exact=knobs.get("state_dtype", "float64") == "float64",
            )
            states = backend.encode_batch(encoder, token_lists, 16)
            if backend.exact:
                for local_arr, remote_arr in zip(local_states, states):
                    assert np.array_equal(local_arr, remote_arr), (
                        f"{label}: exact tier diverged from local"
                    )
            else:
                worst = max(
                    max_relative_error(local_arr, remote_arr)
                    for local_arr, remote_arr in zip(local_states, states)
                )
                assert worst <= FLOAT32_TOLERANCE, (
                    f"{label}: float32 tier error {worst:.2e} exceeds "
                    f"{FLOAT32_TOLERANCE:.0e}"
                )
            stats = backend.stats_snapshot()
            tiers[label] = {
                "bytes_sent": stats.bytes_sent,
                "bytes_received": stats.bytes_received,
                "bytes_total": stats.bytes_sent + stats.bytes_received,
                "exact": backend.exact,
            }

    plain = tiers["none/float64"]
    cheap = tiers["gzip/float32"]
    request_gzip_reduction = 1.0 - (
        tiers["gzip/float64"]["bytes_sent"] / plain["bytes_sent"]
    )
    opt_in_total_reduction = 1.0 - (cheap["bytes_total"] / plain["bytes_total"])

    # Sharding splits work only above the per-replica sequence floor, so
    # the routing measurement widens the corpus (cache-identical repeats).
    fleet_lists = token_lists * 4
    fleet_expected = local_states * 4
    with FleetHarness(3) as fleet:
        backend = RemoteBackend(
            config=TransportConfig(urls=fleet.urls, timeout=30.0),
            exact=True,
        )
        fleet_states = backend.encode_batch(encoder, fleet_lists, 8)
        for local_arr, remote_arr in zip(fleet_expected, fleet_states):
            assert np.array_equal(local_arr, remote_arr), (
                "fleet encoding diverged from local"
            )
        fleet_stats = backend.stats_snapshot()
        replica_rows = {
            url: {
                "requests": rep.requests,
                "chunks": rep.chunks,
                "mean_round_trip": rep.mean_round_trip,
            }
            for url, rep in fleet_stats.replicas.items()
        }

    return {
        "sequences": len(token_lists),
        "fleet_sequences": len(fleet_lists),
        "tiers": tiers,
        "request_gzip_reduction": request_gzip_reduction,
        "opt_in_total_reduction": opt_in_total_reduction,
        "fleet_replicas": replica_rows,
        "fleet_chunks": fleet_stats.chunks,
        "fleet_connections_opened": fleet_stats.connections_opened,
        "fleet_connections_reused": fleet_stats.connections_reused,
    }


def report_fleet_comparison(cmp: Dict[str, object]) -> None:
    rows = [
        [label, tier["bytes_sent"], tier["bytes_received"], tier["bytes_total"]]
        for label, tier in cmp["tiers"].items()
    ]
    print()
    print(
        f"Fleet transport tiers — {cmp['sequences']} sequences, bytes on "
        f"the wire per {{compression}}/{{state_dtype}} combination:"
    )
    print(format_value_table(rows, ["tier", "B out", "B in", "B total"]))
    print(
        f"gzip cuts request bytes {cmp['request_gzip_reduction']:.1%}; the "
        f"full opt-in tier (gzip+float32) cuts total bytes "
        f"{cmp['opt_in_total_reduction']:.1%}.  Bit-exact float64 responses "
        f"barely compress (base64 of random mantissas is near "
        f"incompressible) — that tier trades bytes for exactness by design."
    )
    replicas = cmp["fleet_replicas"]
    served = ", ".join(
        f"{url.rsplit(':', 1)[-1]}: {row['chunks']} chunks/"
        f"{row['requests']} requests"
        for url, row in sorted(replicas.items())
    )
    print(
        f"fleet routing ({cmp['fleet_sequences']} sequences over 3 replicas, "
        f"{cmp['fleet_chunks']} chunks): {served}; "
        f"{cmp['fleet_connections_opened']} connections opened, "
        f"{cmp['fleet_connections_reused']} reused"
    )


def phase_totals(sweep) -> Dict[str, float]:
    """Telemetry-measured per-phase seconds summed over a sweep's cells."""
    return {
        "serialize_seconds": sum(c.serialize_seconds for c in sweep.cells),
        "encode_seconds": sum(c.encode_seconds for c in sweep.cells),
        "aggregate_seconds": sum(c.aggregate_seconds for c in sweep.cells),
    }


# ----------------------------------------------------------------------
# Sync-vs-async streaming comparison
# ----------------------------------------------------------------------


def run_async_comparison(sizes: DatasetSizes) -> Dict[str, object]:
    """Cold sweeps with the streaming pipeline on vs off (results must match).

    On a single-core host the overlap cannot shorten wall time (there is
    no second core to hide the encode behind) — the number that matters
    everywhere is the overlap ratio: how much encode time the submitting
    thread did *not* block on.

    Permutation counts are raised past one pipeline chunk (a shuffle
    property submits ``n_permutations`` variants per ``embed_levels_many``
    call) so the streaming path actually engages at smoke sizes.
    """
    sizes = dataclasses.replace(sizes, n_permutations=max(12, sizes.n_permutations))
    o_sync = Observatory(
        seed=0, sizes=sizes, runtime=RuntimeConfig(batch_size=8, async_encode=False)
    )
    t0 = time.perf_counter()
    sweep_sync = o_sync.sweep(MODELS[:1], PROPERTIES, execution="thread")
    t_sync = time.perf_counter() - t0
    o_async = Observatory(
        seed=0, sizes=sizes, runtime=RuntimeConfig(batch_size=8, async_encode=True)
    )
    t0 = time.perf_counter()
    sweep_async = o_async.sweep(MODELS[:1], PROPERTIES, execution="thread")
    t_async = time.perf_counter() - t0
    for cell_s, cell_a in zip(sweep_sync.cells, sweep_async.cells):
        if cell_s.result.to_dict() != cell_a.result.to_dict():
            raise AssertionError(
                f"async pipeline changed results for "
                f"({cell_a.model_name}, {cell_a.property_name})"
            )
    pipe = sweep_async.pipeline
    return {
        "t_sync": t_sync,
        "t_async": t_async,
        "async_speedup": t_sync / t_async,
        "overlap_ratio": pipe.overlap_ratio if pipe else 0.0,
        "async_batches": pipe.batches if pipe else 0,
        "encode_seconds": pipe.encode_seconds if pipe else 0.0,
    }


def report_async_comparison(cmp: Dict[str, object]) -> None:
    cores = os.cpu_count() or 1
    rows = [
        ["synchronous encode", cmp["t_sync"], 1.0],
        ["streaming pipeline (async encode)", cmp["t_async"], cmp["async_speedup"]],
    ]
    print()
    print(f"Sync vs async streaming ({cores} core(s) available):")
    print(format_value_table(rows, ["configuration", "seconds", "speedup"]))
    print(
        f"pipeline: {cmp['async_batches']} background batches, "
        f"{cmp['encode_seconds']:.2f}s encoding, "
        f"{cmp['overlap_ratio']:.1%} overlapped with foreground CPU work"
    )
    if cores < 2:
        print(
            "note: single-core host — overlap cannot shorten wall time "
            "here; the overlap ratio is the portable signal."
        )


def run_naive(sizes: DatasetSizes) -> Tuple[float, Dict[Tuple[str, str], PropertyResult]]:
    observatory = Observatory(
        seed=0, sizes=sizes, runtime=RuntimeConfig(enabled=False)
    )
    started = time.perf_counter()
    results = {
        (model, prop): observatory.characterize(model, prop)
        for model in MODELS
        for prop in PROPERTIES
    }
    return time.perf_counter() - started, results


def run_sweeps(sizes: DatasetSizes):
    observatory = Observatory(seed=0, sizes=sizes, runtime=RuntimeConfig(batch_size=16))
    started = time.perf_counter()
    cold = observatory.sweep(MODELS, PROPERTIES, execution="thread")
    t_cold = time.perf_counter() - started
    started = time.perf_counter()
    warm = observatory.sweep(MODELS, PROPERTIES, execution="thread")
    t_warm = time.perf_counter() - started
    return t_cold, cold, t_warm, warm, observatory.cache.stats


def run_process_sweep(sizes: DatasetSizes, disk_dir: str, workers: int):
    """One process-sharded sweep sharing ``disk_dir`` as the cache tier."""
    observatory = Observatory(
        seed=0,
        sizes=sizes,
        runtime=RuntimeConfig(batch_size=16, disk_cache_dir=disk_dir),
    )
    started = time.perf_counter()
    sweep = observatory.sweep(
        MODELS, PROPERTIES, max_workers=workers, execution="process"
    )
    return time.perf_counter() - started, sweep


def run_process_scaling(sizes: DatasetSizes):
    """Cold single-shard vs cold multi-shard process sweeps + a warm pass.

    Each cold run uses a fresh disk dir so shard counts are compared on
    equal (empty-cache) footing; the warm pass reuses the multi-shard
    dir to measure the shared disk tier across process boundaries.
    """
    multi = min(4, os.cpu_count() or 1, len(MODELS) * len(PROPERTIES))
    with tempfile.TemporaryDirectory() as single_dir:
        t_single, single = run_process_sweep(sizes, single_dir, workers=1)
    with tempfile.TemporaryDirectory() as multi_dir:
        t_multi, cold = run_process_sweep(sizes, multi_dir, workers=multi)
        t_warm, warm = run_process_sweep(sizes, multi_dir, workers=multi)
    return {
        "single_workers": 1,
        "multi_workers": multi,
        "t_single": t_single,
        "t_multi": t_multi,
        "t_warm": t_warm,
        "single": single,
        "cold": cold,
        "warm": warm,
    }


def run_scheduler_comparison(sizes: DatasetSizes) -> Dict[str, object]:
    """Static-shard oracle vs work-stealing scheduler, equal cold footing.

    Both engines run the same cache-aware-ordered cells with 2 workers on
    a fresh disk tier; results must be bit-identical before any timing is
    recorded.  Alongside the wall-clock comparison the record keeps the
    full dispatch log, steal/crash counters, per-worker utilization, and
    the measured per-cell seconds (``cell_records``) that feed a later
    sweep's LPT cost priors.
    """
    from repro.runtime.process_sweep import ProcessShardedSweep
    from repro.runtime.scheduler import WorkStealingSweep
    from repro.runtime.sweep import order_cells

    cells = order_cells([(m, p) for p in PROPERTIES for m in MODELS])

    def engine_observatory(disk_dir: str) -> Observatory:
        return Observatory(
            seed=0,
            sizes=sizes,
            runtime=RuntimeConfig(batch_size=16, disk_cache_dir=disk_dir),
        )

    with tempfile.TemporaryDirectory() as static_dir:
        t0 = time.perf_counter()
        static = ProcessShardedSweep(
            engine_observatory(static_dir), max_workers=2
        ).run(cells)
        t_static = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as steal_dir:
        t0 = time.perf_counter()
        stealing = WorkStealingSweep(
            engine_observatory(steal_dir), max_workers=2
        ).run(cells)
        t_stealing = time.perf_counter() - t0

    def as_dicts(outcome):
        return {
            (c.model_name, c.property_name): c.result.to_dict()
            for c in outcome.cells
        }

    if as_dicts(static) != as_dicts(stealing):
        raise AssertionError(
            "work-stealing scheduler diverged from the static-shard oracle"
        )
    telemetry = stealing.scheduler
    return {
        "t_static": t_static,
        "t_stealing": t_stealing,
        "overhead_ratio": t_stealing / t_static,
        "static_workers": static.workers,
        "stealing_workers": stealing.workers,
        "cell_records": [
            {
                "model": c.model_name,
                "property": c.property_name,
                "seconds": c.seconds,
            }
            for c in stealing.cells
        ],
        **telemetry.to_dict(),
    }


def report_scheduler_comparison(cmp: Dict[str, object]) -> None:
    rows = [
        ["static shards (oracle engine)", cmp["t_static"], 1.0],
        [
            "work-stealing scheduler",
            cmp["t_stealing"],
            cmp["t_static"] / cmp["t_stealing"],
        ],
    ]
    print()
    print(
        f"Static sharding vs work-stealing — {cmp['groups']} corpus-affinity "
        f"groups on {cmp['stealing_workers']} workers, results bit-identical:"
    )
    print(format_value_table(rows, ["engine", "seconds", "speedup"]))
    print(
        f"dispatch: {cmp['redispatches']} straggler re-dispatches "
        f"({cmp['duplicates_discarded']} duplicates discarded), "
        f"{cmp['crashes']} crashes ({cmp['salvaged_groups']} salvaged)"
    )
    for worker in cmp["workers"]:
        print(
            f"  worker {worker['worker_id']}: {worker['busy_fraction']:.1%} busy, "
            f"{worker['groups']} groups / {worker['cells']} cells, "
            f"{worker['steals']} steals"
        )
    for entry in cmp["dispatch_log"]:
        seconds = f"{entry['seconds']:.2f}s" if entry["seconds"] else "-"
        dup = " (duplicate)" if entry["duplicate"] else ""
        print(
            f"  group {entry['group']} ({entry['model']}/{entry['corpus']}, "
            f"{entry['cells']} cells) -> worker {entry['worker']}{dup}: "
            f"{entry['outcome']} in {seconds}"
        )


def check_identical(
    naive: Dict[Tuple[str, str], PropertyResult], sweep
) -> None:
    for cell in sweep.cells:
        expected = naive[(cell.model_name, cell.property_name)].to_dict()
        actual = cell.result.to_dict()
        if expected != actual:
            raise AssertionError(
                f"results diverged for ({cell.model_name}, {cell.property_name})"
            )


def warmup() -> None:
    """Amortize one-time costs (imports, shared content-vector cache) so the
    timed configurations start from the same warmth."""
    for enabled in (False, True):
        observatory = Observatory(
            seed=0, sizes=WARMUP_SIZES, runtime=RuntimeConfig(enabled=enabled)
        )
        for prop in PROPERTIES:
            observatory.characterize(MODELS[0], prop)


def report_process_scaling(scaling: Dict[str, object]) -> None:
    cores = os.cpu_count() or 1
    t_single, t_multi = scaling["t_single"], scaling["t_multi"]
    multi = scaling["multi_workers"]
    shards = f"{multi} shard{'s' if multi != 1 else ''}"
    rows = [
        ["process sweep, 1 shard (cold)", t_single, 1.0],
        [f"process sweep, {shards} (cold)", t_multi, t_single / t_multi],
        [
            f"process sweep, {shards} (warm disk tier)",
            scaling["t_warm"],
            t_single / scaling["t_warm"],
        ],
    ]
    print()
    print(f"Thread-vs-process scaling ({cores} core(s) available):")
    print(format_value_table(rows, ["configuration", "seconds", "scaling"]))
    if cores < 2:
        print(
            "note: single-core host — process sharding can only add spawn "
            "overhead here; scaling numbers are meaningful on >= 2 cores."
        )
    warm_stats: CacheStats = scaling["warm"].cache_stats
    print(
        f"shared disk tier: {warm_stats.disk_hits} cross-process disk hits "
        f"on the warm pass ({warm_stats.hit_rate:.1%} hit rate)"
    )


def write_json(path: Optional[str], payload: Dict[str, object]) -> None:
    """Persist the machine-readable benchmark record (CI perf artifact)."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=str)
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes + hardware-independent assertions (CI gate)",
    )
    parser.add_argument(
        "--execution",
        choices=["thread", "process"],
        default="thread",
        help="which sweep engine the smoke gate exercises (default: thread)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write a machine-readable BENCH_*.json record of all timings",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else FULL_SIZES

    payload: Dict[str, object] = {
        "bench": "runtime_sweep",
        "schema_version": 6,
        "mode": "smoke" if args.smoke else "full",
        "engine": args.execution,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "models": MODELS,
        "properties": PROPERTIES,
        "sizes": dataclasses.asdict(sizes),
        "timestamp": time.time(),
    }

    warmup()
    t_naive, naive_results = run_naive(sizes)
    payload["t_naive"] = t_naive

    if args.execution == "process":
        # try/finally from the first measurement on: the JSON record must
        # survive a failing comparison or gate.
        try:
            scaling = run_process_scaling(sizes)
            for sweep in (scaling["single"], scaling["cold"], scaling["warm"]):
                check_identical(naive_results, sweep)
            print()
            print("=" * 72)
            print(
                f"Runtime sweep benchmark (process engine) — "
                f"{len(MODELS)} models x {len(PROPERTIES)} properties"
            )
            print("=" * 72)
            report_process_scaling(scaling)
            print("results: numerically identical across all shard counts")
            payload.update(
                {
                    "backend": scaling["cold"].backend,
                    "t_process_single": scaling["t_single"],
                    "t_process_multi": scaling["t_multi"],
                    "t_process_warm": scaling["t_warm"],
                    "process_workers": scaling["multi_workers"],
                    "warm_disk_hit_rate": scaling["warm"].cache_stats.hit_rate,
                }
            )
            scheduler_cmp = run_scheduler_comparison(sizes)
            report_scheduler_comparison(scheduler_cmp)
            payload["scheduler"] = scheduler_cmp
            if args.smoke:
                combined = CacheStats.merged(
                    [scaling["cold"].cache_stats, scaling["warm"].cache_stats]
                )
                assert combined.hit_rate > 0.45, (
                    f"shared disk tier ineffective: hit rate {combined.hit_rate:.1%}"
                )
                assert scaling["warm"].cache_stats.disk_hits > 0, (
                    "warm process sweep never hit the shared disk tier"
                )
                # Dispatch telemetry must be complete: every group won by
                # exactly one result, every cell's seconds recorded.
                won = [
                    e for e in scheduler_cmp["dispatch_log"] if e["outcome"] == "won"
                ]
                assert len(won) == scheduler_cmp["groups"], (
                    f"dispatch log incomplete: {len(won)} wins for "
                    f"{scheduler_cmp['groups']} groups"
                )
                assert len(scheduler_cmp["cell_records"]) == len(MODELS) * len(
                    PROPERTIES
                ), "scheduler cell_records missing cells"
                # Scheduler overhead gate: <= 5% over static sharding, plus
                # 0.5s absolute slack because a 1-core CI runner's spawn
                # jitter between two back-to-back cold runs exceeds any
                # dispatch-loop cost at smoke sizes.
                bound = scheduler_cmp["t_static"] * 1.05 + 0.5
                assert scheduler_cmp["t_stealing"] <= bound, (
                    f"work-stealing overhead too high: "
                    f"{scheduler_cmp['t_stealing']:.2f}s vs static "
                    f"{scheduler_cmp['t_static']:.2f}s (bound {bound:.2f}s)"
                )
            payload["gates_passed"] = True
        finally:
            write_json(args.json_path, payload)
        print("benchmark assertions passed")
        return 0

    # Everything from here down runs inside try/finally so the JSON perf
    # record survives a failing comparison, identity check, or gate —
    # that record is exactly what a regression needs.
    try:
        t_cold, cold, t_warm, warm, cache_stats = run_sweeps(sizes)
        cold_speedup = t_naive / t_cold
        warm_speedup = t_naive / t_warm
        workflow_speedup = (2 * t_naive) / (t_cold + t_warm)
        payload.update(
            {
                "backend": cold.backend,
                "t_cold": t_cold,
                "t_warm": t_warm,
                "cold_speedup": cold_speedup,
                "warm_speedup": warm_speedup,
                "workflow_speedup": workflow_speedup,
                "cache_hit_rate": cache_stats.hit_rate,
                "cold_overlap_ratio": (
                    cold.pipeline.overlap_ratio if cold.pipeline else 0.0
                ),
                "cell_records": cold.records,
                "phase_seconds": phase_totals(cold),
            }
        )
        check_identical(naive_results, cold)
        check_identical(naive_results, warm)

        rows = [
            ["naive sequential (runtime off)", t_naive, 1.0],
            ["cold sweep (batched + cached)", t_cold, cold_speedup],
            ["warm sweep (re-characterize)", t_warm, warm_speedup],
            ["two-pass workflow", t_cold + t_warm, workflow_speedup],
        ]
        print()
        print("=" * 72)
        print(
            f"Runtime sweep benchmark — "
            f"{len(MODELS)} models x {len(PROPERTIES)} properties"
        )
        print("=" * 72)
        print(format_value_table(rows, ["configuration", "seconds", "speedup"]))
        print()
        print(f"cache: {cache_stats}")
        if cold.pipeline is not None:
            print(
                f"pipeline: {cold.pipeline.batches} async batches, "
                f"{cold.pipeline.overlap_ratio:.1%} of encode time overlapped"
            )
        print("results: numerically identical across all configurations")

        backend_cmp = run_backend_comparison()
        report_backend_comparison(backend_cmp)
        payload["backend_comparison"] = backend_cmp

        plane_cmp = run_token_plane_comparison()
        report_token_plane(plane_cmp)
        payload["token_plane"] = plane_cmp

        async_cmp = run_async_comparison(sizes)
        report_async_comparison(async_cmp)
        payload["async_comparison"] = async_cmp

        remote_cmp = run_remote_comparison()
        report_remote_comparison(remote_cmp)
        payload["remote"] = remote_cmp

        fleet_cmp = run_fleet_comparison()
        report_fleet_comparison(fleet_cmp)
        payload["fleet"] = fleet_cmp

        # Wire-tier gates (every mode — byte counts are deterministic, not
        # timing-dependent): gzip must earn its keep where it can.  The
        # response side of the bit-exact tier is entropy-bounded, so the
        # gates target the request side and the full opt-in tier.
        assert fleet_cmp["request_gzip_reduction"] >= 0.4, (
            f"gzip request-side reduction "
            f"{fleet_cmp['request_gzip_reduction']:.1%} < 40%"
        )
        assert fleet_cmp["opt_in_total_reduction"] >= 0.4, (
            f"gzip+float32 total wire reduction "
            f"{fleet_cmp['opt_in_total_reduction']:.1%} < 40%"
        )
        assert len(fleet_cmp["fleet_replicas"]) >= 2, (
            "fleet sharding never routed beyond a single replica"
        )

        if not args.smoke:
            scaling = run_process_scaling(sizes)
            for sweep in (scaling["single"], scaling["cold"], scaling["warm"]):
                check_identical(naive_results, sweep)
            report_process_scaling(scaling)
            payload.update(
                {
                    "t_process_single": scaling["t_single"],
                    "t_process_multi": scaling["t_multi"],
                    "t_process_warm": scaling["t_warm"],
                    "process_workers": scaling["multi_workers"],
                }
            )
            scheduler_cmp = run_scheduler_comparison(sizes)
            report_scheduler_comparison(scheduler_cmp)
            payload["scheduler"] = scheduler_cmp

        # Numerics gate in every mode: padded stays inside its documented
        # tolerance (the async comparison asserted result-identity
        # internally already).
        assert backend_cmp["max_relative_error"] <= backend_cmp["tolerance"], (
            f"padded backend error {backend_cmp['max_relative_error']:.2e} exceeds "
            f"documented tolerance {backend_cmp['tolerance']:.0e}"
        )
        if args.smoke:
            assert t_cold <= t_naive * 1.05, (
                f"cached sweep slower than naive baseline: {t_cold:.2f}s vs {t_naive:.2f}s"
            )
            # Tightened from "not slower" once two PRs of variance data
            # showed the two-pass workflow holding >= 4.3x on 1-core
            # runners; 3.5x keeps ~20% margin for runner noise.
            assert workflow_speedup >= 3.5, (
                f"two-pass workflow speedup {workflow_speedup:.2f}x < 3.5x"
            )
            assert cache_stats.hit_rate > 0.45, (
                f"cache ineffective: hit rate {cache_stats.hit_rate:.1%}"
            )
            # Measured edge ~1.2-1.5x on a quiet host; 0.9 leaves the same
            # noise margin the other smoke gates carry while still
            # catching padded becoming materially slower than exact.
            assert backend_cmp["padded_speedup"] >= 0.9, (
                f"padded batching materially slower than same-length "
                f"batching on the heterogeneous corpus: "
                f"{backend_cmp['padded_speedup']:.2f}x"
            )
        else:
            assert cold_speedup >= 2.0, f"cold sweep speedup {cold_speedup:.2f}x < 2x"
            assert workflow_speedup >= 3.5, (
                f"two-pass workflow speedup {workflow_speedup:.2f}x < 3.5x"
            )
            assert backend_cmp["padded_speedup"] >= 1.05, (
                f"padded batching does not beat same-length batching on the "
                f"heterogeneous corpus: {backend_cmp['padded_speedup']:.2f}x"
            )
            # Columnar token plane gate (full mode only — smoke stays
            # ungated: 1-core CI timing is too noisy for a fresh phase
            # gate).  Measured ~3x on the dev container; 1.5x keeps a
            # conservative margin.
            assert plane_cmp["combined_speedup"] >= 1.5, (
                f"columnar serialize+aggregate speedup "
                f"{plane_cmp['combined_speedup']:.2f}x < 1.5x vs the "
                f"Token-object baseline"
            )
        payload["gates_passed"] = True
    finally:
        write_json(args.json_path, payload)
    print("benchmark assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
