"""Figure 10: distributions of FD vs non-FD group variances per model.

The paper's point is negative: no model separates the two distributions.
The bench renders both distributions as box plots per model and asserts
heavy overlap (interquartile ranges intersect) for every model.
"""


from benchmarks._common import TABLE4_MODELS, observatory, print_header
from repro.analysis.reporting import render_boxplot
from repro.core.properties import FDConfig, FunctionalDependencies


def run_figure10():
    obs = observatory()
    runner = FunctionalDependencies()
    out = {}
    for name in TABLE4_MODELS:
        result = runner.run(
            obs.model(name), obs.spider_sets(), FDConfig(keep_series=True)
        )
        out[name] = {
            "fd": (result.series["fd/s2"], result.distributions["fd/s2"]),
            "non_fd": (
                result.series["non_fd/s2"],
                result.distributions["non_fd/s2"],
            ),
        }
    return out


def test_figure10_fd_distributions(benchmark):
    results = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    for name, dists in results.items():
        print_header(f"Figure 10: S^2 distributions for {name}")
        print(
            render_boxplot(
                {"with FD": dists["fd"][0], "without FD": dists["non_fd"][0]}
            )
        )
        fd_stats = dists["fd"][1]
        non_fd_stats = dists["non_fd"][1]
        # No distinct separation: the value ranges overlap for every model.
        assert fd_stats.maximum > non_fd_stats.minimum, name
        assert non_fd_stats.maximum > fd_stats.minimum, name
