"""Figure 8: PCA of column-permutation variants (same table as Figure 6).

Column shuffling spreads the projections further than row shuffling across
*all* columns — the bench compares the per-column PC1 standard deviations
between the two shuffle axes for T5.
"""

import numpy as np

from benchmarks._common import observatory, print_header, scaled
from repro.analysis.pca import PCA
from repro.analysis.reporting import format_value_table
from repro.data.wikitables import WikiTablesGenerator
from repro.relational.permutations import sample_permutations


def cloud_spread(model, table, axis, n_permutations):
    n_items = table.num_rows if axis == "row" else table.num_columns
    perms = sample_permutations(
        n_items, n_permutations, seed_parts=(table.table_id, "fig8", axis)
    )
    per_variant = []
    for p in perms:
        if axis == "row":
            emb = model.embed_columns(table.reorder_rows(list(p)))
        else:
            shuffled = model.embed_columns(table.reorder_columns(list(p)))
            emb = np.zeros_like(shuffled)
            for j, original in enumerate(p):
                emb[original] = shuffled[j]
        per_variant.append(emb)
    stack = np.stack(per_variant)  # [n_perms, n_cols, dim]
    spreads = []
    for col in range(table.num_columns):
        projected = PCA(2).fit_transform(stack[:, col, :])
        spreads.append(float(projected[:, 0].std(ddof=1)))
    return spreads


def run_figure8(n_permutations):
    obs = observatory()
    table = WikiTablesGenerator(seed=41).generate_table("countries", 6, table_index=0)
    t5 = obs.model("t5")
    return {
        "row": cloud_spread(t5, table, "row", n_permutations),
        "column": cloud_spread(t5, table, "column", n_permutations),
    }


def test_figure8_pca_column_shuffle(benchmark):
    spreads = benchmark.pedantic(
        lambda: run_figure8(scaled(48, minimum=24)), rounds=1, iterations=1
    )
    print_header("Figure 8: PC1 spread of T5 clouds, row vs column shuffling")
    rows = [[axis] + values for axis, values in spreads.items()]
    headers = ["axis"] + [f"col{i}" for i in range(len(rows[0]) - 1)]
    print(format_value_table(rows, headers, precision=4))
    # Column shuffling shows larger spread across all columns (Fig. 8 text).
    larger = sum(
        1 for r, c in zip(spreads["row"], spreads["column"]) if c > r
    )
    assert larger >= len(spreads["row"]) - 1
