"""Section 6 (P5 connection): sample-efficient join discovery with T5.

The paper reports that sampled T5 embeddings (~5% of rows on NextiaJD-XS)
keep precision/recall within +-3% of full-value embeddings while indexing
runs > 7x and lookup > 2x faster.  The bench reruns the comparison; the
wall-clock speedups depend on the machine, so the assertions check the
qualitative shape: near-parity quality and clear (> 2x) indexing speedup.

Retrieval is served by the persistent :class:`repro.index.ColumnIndex`
(``engine="index"`` with pruning off — provably identical results to
brute force), with embeddings routed through the Observatory's
fingerprint-cached executor; a brute-force rerun on the now-warm cache
asserts engine parity.
"""


from benchmarks._common import observatory, print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.data.nextiajd import NextiaJDGenerator, Testbed
from repro.downstream.join_discovery import evaluate_join_discovery


def _pairs():
    return NextiaJDGenerator(seed=21).generate_pairs(scaled(30, minimum=12), Testbed.S)


def run_join_discovery():
    return evaluate_join_discovery(
        observatory().executor("t5"),
        _pairs(),
        k=5,
        sample_fraction=0.05,
        min_sample=5,
        engine="index",
        prune="off",
        quantize=True,
    )


def test_section6_join_discovery(benchmark):
    report = benchmark.pedantic(run_join_discovery, rounds=1, iterations=1)

    # Engine parity: the exhaustive oracle over the same (cache-hot,
    # quantized) embeddings must reproduce the index-served metrics.
    oracle = evaluate_join_discovery(
        observatory().executor("t5"),
        _pairs(),
        k=5,
        sample_fraction=0.05,
        min_sample=5,
        quantize=True,
    )
    assert (report.precision_full, report.recall_full) == (
        oracle.precision_full,
        oracle.recall_full,
    )
    assert (report.precision_sampled, report.recall_sampled) == (
        oracle.precision_sampled,
        oracle.recall_sampled,
    )
    print_header("Section 6: T5 join discovery, sampled vs full values")
    rows = [
        ["precision", report.precision_full, report.precision_sampled, report.precision_delta],
        ["recall", report.recall_full, report.recall_sampled, report.recall_delta],
        ["index time (s)", report.index_time_full, report.index_time_sampled,
         report.index_speedup],
        ["lookup time (s)", report.lookup_time_full, report.lookup_time_sampled,
         report.lookup_speedup],
    ]
    print(format_value_table(rows, ["metric", "full", "sampled", "delta/speedup"]))
    print(report.summary())

    # Quality parity: sampling moves precision/recall by a small margin
    # (the paper reports < 3 points at its full dataset scale; the small
    # benchmark corpus is noisier).
    assert abs(report.recall_delta) < 0.15
    assert abs(report.precision_delta) < 0.15
    # Sampling pays off: indexing clearly faster.
    assert report.index_speedup > 2.0
    # The retrieval itself works: precision@k well above chance.
    assert report.precision_full > 0.2
