"""Column-index benchmark: build throughput and query latency vs brute force.

Builds the persistent :class:`repro.index.ColumnIndex` over clustered
synthetic column-embedding corpora at several scales and measures, per
scale:

- **build throughput** (rows/s through ``append_many``, including shard
  digesting and the manifest protocol);
- **query latency** for the exhaustive oracle
  (:class:`JoinDiscoveryIndex`), the index's pruning-off mode, and both
  pruned modes (``bound``, ``probe``);
- **probe recall** against the exhaustive top-k.

Gates (every mode, every scale):

- pruning-off results are **bit-identical** to the brute-force oracle —
  keys, scores, and order — for every benchmarked query;
- probe mean recall >= the documented floor
  (:data:`repro.index.PROBE_RECALL_FLOOR`);
- at the largest benched corpus the probe-mode query beats the
  exhaustive lookup wall-clock — the sublinear-curve check.

Usage::

    python benchmarks/bench_column_index.py                 # full scales
    python benchmarks/bench_column_index.py --smoke         # tiny CI gate
    python benchmarks/bench_column_index.py --json BENCH_column_index.json

``--json PATH`` writes every timing and recall into a machine-readable
record (written even when a gate fails, so CI keeps the evidence).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from repro.downstream.join_discovery import JoinDiscoveryIndex
from repro.index import PROBE_RECALL_FLOOR, ColumnIndex, default_min_candidates

DIM = 64
FULL_SCALES = (2000, 8000, 32000)
SMOKE_SCALES = (1000, 4000)
FULL_QUERIES = 50
SMOKE_QUERIES = 25
K = 10


def clustered_corpus(rng: np.random.Generator, rows: int):
    """Synthetic column embeddings with cluster structure (as real
    column corpora have: columns of one semantic type embed nearby)."""
    n_clusters = max(8, rows // 80)
    centers = rng.normal(size=(n_clusters, DIM)) * 4.0
    per = rows // n_clusters
    matrix = np.concatenate(
        [
            centers[c] + rng.normal(size=(per, DIM)) * 0.5
            for c in range(n_clusters)
        ]
    )[:rows]
    keys = [f"col{i}" for i in range(matrix.shape[0])]
    queries = np.stack(
        [
            centers[i % n_clusters] + rng.normal(size=DIM) * 0.5
            for i in range(FULL_QUERIES)
        ]
    )
    return keys, matrix, queries


def time_queries(fn, queries) -> float:
    """Mean seconds per query."""
    t0 = time.perf_counter()
    for query in queries:
        fn(query)
    return (time.perf_counter() - t0) / len(queries)


def bench_scale(rows: int, n_queries: int, scratch: str) -> Dict[str, object]:
    rng = np.random.default_rng(rows)
    keys, matrix, queries = clustered_corpus(rng, rows)
    queries = queries[:n_queries]

    t0 = time.perf_counter()
    index = ColumnIndex.build(
        os.path.join(scratch, f"idx-{rows}"), zip(keys, matrix), dim=DIM
    )
    build_seconds = time.perf_counter() - t0

    oracle = JoinDiscoveryIndex(DIM)
    for key, row in zip(keys, matrix):
        oracle.add(key, ColumnIndex.quantize(row))

    # Warm every path before timing: oracle matrix view, index dense
    # matrix, and the persisted partition plan.
    oracle.lookup(queries[0], K)
    for mode in ("off", "bound", "probe"):
        index.query(queries[0], K, prune=mode)

    # Gate: pruning-off is bit-identical to brute force on every query.
    for query in queries:
        assert index.query(query, K, prune="off") == oracle.lookup(query, K), (
            f"pruning-off diverged from the exhaustive oracle at rows={rows}"
        )

    recalls: List[float] = []
    for query in queries:
        exact = {key for key, _ in oracle.lookup(query, K)}
        probe = {key for key, _ in index.query(query, K, prune="probe")}
        recalls.append(len(exact & probe) / K)

    t_exhaustive = time_queries(lambda q: oracle.lookup(q, K), queries)
    t_off = time_queries(lambda q: index.query(q, K, prune="off"), queries)
    t_bound = time_queries(lambda q: index.query(q, K, prune="bound"), queries)
    t_probe = time_queries(lambda q: index.query(q, K, prune="probe"), queries)

    return {
        "rows": len(keys),
        "dim": DIM,
        "k": K,
        "queries": len(queries),
        "build_seconds": build_seconds,
        "build_rows_per_s": len(keys) / max(build_seconds, 1e-9),
        "shards": index.describe()["shards"],
        "partitions": index.describe()["partitions"],
        "probe_candidate_floor": default_min_candidates(len(keys)),
        "t_exhaustive_ms": t_exhaustive * 1e3,
        "t_off_ms": t_off * 1e3,
        "t_bound_ms": t_bound * 1e3,
        "t_probe_ms": t_probe * 1e3,
        "probe_speedup_vs_exhaustive": t_exhaustive / max(t_probe, 1e-9),
        "probe_recall_mean": float(np.mean(recalls)),
        "probe_recall_min": float(np.min(recalls)),
        "oracle_identical": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scales + hardware-independent assertions (CI gate)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write a machine-readable BENCH_*.json record",
    )
    args = parser.parse_args(argv)
    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    n_queries = SMOKE_QUERIES if args.smoke else FULL_QUERIES

    payload: Dict[str, object] = {
        "bench": "column_index",
        "schema_version": 1,
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "dim": DIM,
        "k": K,
        "probe_recall_floor": PROBE_RECALL_FLOOR,
        "scales": [],
        "timestamp": time.time(),
    }

    print("=" * 72)
    print(
        f"Column index benchmark — scales {list(scales)}, dim {DIM}, "
        f"top-{K}, {n_queries} queries/scale"
    )
    print("=" * 72)
    try:
        with tempfile.TemporaryDirectory() as scratch:
            for rows in scales:
                record = bench_scale(rows, n_queries, scratch)
                payload["scales"].append(record)
                print(
                    f"rows={record['rows']:>6}: build "
                    f"{record['build_rows_per_s']:>9.0f} rows/s | query ms "
                    f"exhaustive {record['t_exhaustive_ms']:.3f} / "
                    f"off {record['t_off_ms']:.3f} / "
                    f"bound {record['t_bound_ms']:.3f} / "
                    f"probe {record['t_probe_ms']:.3f} "
                    f"({record['probe_speedup_vs_exhaustive']:.1f}x) | "
                    f"probe recall {record['probe_recall_mean']:.3f} "
                    f"(min {record['probe_recall_min']:.2f}) | oracle-identical"
                )

        # Recall floor at every scale (oracle identity asserted inline).
        for record in payload["scales"]:
            assert record["probe_recall_mean"] >= PROBE_RECALL_FLOOR, (
                f"probe recall {record['probe_recall_mean']:.3f} below floor "
                f"{PROBE_RECALL_FLOOR} at rows={record['rows']}"
            )
        # The sublinear payoff: pruned search beats brute force at the
        # largest benched corpus.
        largest = payload["scales"][-1]
        assert largest["t_probe_ms"] < largest["t_exhaustive_ms"], (
            "probe-mode query did not beat the exhaustive lookup at "
            f"rows={largest['rows']}: {largest['t_probe_ms']:.3f}ms vs "
            f"{largest['t_exhaustive_ms']:.3f}ms"
        )
        payload["gates_passed"] = True
        print(
            f"gates: oracle identity at every scale; probe recall >= "
            f"{PROBE_RECALL_FLOOR}; probe beats exhaustive at "
            f"rows={largest['rows']} "
            f"({largest['probe_speedup_vs_exhaustive']:.1f}x)"
        )
    finally:
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            print(f"wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
