"""Table 5: single-column vs contextual embeddings (min / median / max).

Regenerates the two-row-per-model summary (non-textual, textual) across the
three context settings and asserts the paper's extremes: TaBERT is
insensitive to context (median > 0.95 in every setting) while DODUO is the
most sensitive, with the entire-table setting changing embeddings the most.
"""


from benchmarks._common import TABLE5_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table

SETTINGS = ("subject_column", "neighboring_columns", "entire_table")
FAMILIES = ("non_textual", "textual")


def run_table5():
    grid = {}
    for name in TABLE5_MODELS:
        result = characterize(name, "heterogeneous_context")
        grid[name] = {
            (family, setting): result.distributions.get(f"{family}/{setting}")
            for family in FAMILIES
            for setting in SETTINGS
        }
    return grid


def test_table5_context(benchmark):
    grid = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    print_header("Table 5: cosine(single column, contextual column)")
    rows = []
    for name in TABLE5_MODELS:
        for family in FAMILIES:
            row = [f"{name} ({family})"]
            for setting in SETTINGS:
                stats = grid[name][(family, setting)]
                row.append(
                    "-" if stats is None
                    else f"{stats.minimum:.2f}/{stats.median:.2f}/{stats.maximum:.2f}"
                )
            rows.append(row)
    print(format_value_table(rows, ["model"] + list(SETTINGS)))

    # TaBERT: insensitive to context in every setting.
    for setting in SETTINGS:
        stats = grid["tabert"][("non_textual", setting)]
        assert stats.median > 0.95, setting
    # DODUO: the most context-sensitive model of the panel.
    for family in FAMILIES:
        doduo_med = grid["doduo"][(family, "entire_table")].median
        for other in ("bert", "roberta", "t5", "tabert"):
            assert doduo_med < grid[other][(family, "entire_table")].median
    # Whole-table context moves embeddings at least as much as the subject
    # column does for the context-sensitive models.
    for name in ("doduo", "tapas"):
        subj = grid[name][("non_textual", "subject_column")].median
        table = grid[name][("non_textual", "entire_table")].median
        assert table <= subj + 0.02, name
