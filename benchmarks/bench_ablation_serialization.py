"""Ablation: serialization and the binary-search row-truncation protocol.

Section 4.3 of the paper fits tables to the model input limit by keeping
all columns and binary-searching the maximum number of rows.  The bench
sweeps input limits, verifies the protocol (budget respected, fitted rows
monotone in the limit, maximality of the fit) and reports how many rows of
a wide table survive at each limit for both serialization orders.
"""


from benchmarks._common import print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.data.nextiajd import NextiaJDGenerator
from repro.models.serializers import ColumnWiseSerializer, RowWiseSerializer
from repro.text.tokenizer import Tokenizer

LIMITS = (128, 256, 512, 1024)


def run_sweep():
    tokenizer = Tokenizer()
    table = NextiaJDGenerator(seed=5).generate_large_table(
        n_rows=scaled(300, minimum=100), n_columns=10
    )
    rows = []
    for limit in LIMITS:
        row_wise = RowWiseSerializer(tokenizer, limit)
        column_wise = ColumnWiseSerializer(tokenizer, limit)
        fit_r = row_wise.fit_rows(table)
        fit_c = column_wise.fit_rows(table)
        tokens_r = len(row_wise.serialize(table))
        tokens_c = len(column_wise.serialize(table))
        rows.append([limit, fit_r, tokens_r, fit_c, tokens_c])
    return table, rows


def test_ablation_serialization(benchmark):
    table, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_header(
        f"Ablation: rows fitted by binary search ({table.num_rows} rows x "
        f"{table.num_columns} columns)"
    )
    print(
        format_value_table(
            rows,
            ["limit", "rows(row-wise)", "tokens", "rows(col-wise)", "tokens"],
        )
    )
    tokenizer = Tokenizer()
    previous_fit = 0
    for limit, fit_r, tokens_r, fit_c, tokens_c in rows:
        assert tokens_r <= limit and tokens_c <= limit
        assert fit_r >= previous_fit  # monotone in the budget
        previous_fit = fit_r
        # Maximality: one more row would overflow (when rows remain).
        serializer = RowWiseSerializer(tokenizer, limit)
        if fit_r < table.num_rows:
            assert len(serializer.serialize_rows(table, fit_r + 1)) > limit
