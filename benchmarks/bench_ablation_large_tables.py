"""Ablation (Section 7): impact of tables with large dimensionality.

The paper checks BERT and TAPAS on NextiaJD-S (209k rows, 56 columns on
average) and finds no significant difference in row/column-order behaviour
versus WikiTables-sized inputs — large tables are truncated to what fits
anyway.  The bench compares row-shuffle cosine distributions between a
small table and a wide/long generated table for both models.
"""

import numpy as np

from benchmarks._common import observatory, print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.core.measures.similarity import cosine_similarity
from repro.data.nextiajd import NextiaJDGenerator
from repro.data.wikitables import WikiTablesGenerator
from repro.relational.permutations import sample_permutations


def shuffle_cosines(model, table, n_permutations):
    perms = sample_permutations(
        table.num_rows, n_permutations, seed_parts=(table.table_id, "large")
    )
    reference = model.embed_columns(table)
    out = []
    for p in perms[1:]:
        variant = model.embed_columns(table.reorder_rows(list(p)))
        for c in range(table.num_columns):
            if np.linalg.norm(reference[c]) > 1e-12 and np.linalg.norm(variant[c]) > 1e-12:
                out.append(cosine_similarity(reference[c], variant[c]))
    return out


def run_comparison():
    obs = observatory()
    small = WikiTablesGenerator(seed=61).generate_table("companies", 8, table_index=0)
    large = NextiaJDGenerator(seed=61).generate_large_table(
        n_rows=scaled(400, minimum=150), n_columns=24, table_id="nextiajd-s-like"
    )
    n_perm = scaled(6, minimum=4)
    out = {}
    for name in ("bert", "tapas"):
        model = obs.model(name)
        out[name] = {
            "small": shuffle_cosines(model, small, n_perm),
            "large": shuffle_cosines(model, large, n_perm),
        }
    return out


def test_ablation_large_tables(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print_header("Ablation: row-shuffle cosine, small vs large tables")
    rows = []
    for name, by_size in results.items():
        for size, values in by_size.items():
            rows.append([f"{name} ({size})", float(np.median(values)), float(np.min(values))])
    print(format_value_table(rows, ["model (table)", "median", "min"]))

    for name, by_size in results.items():
        small_med = np.median(by_size["small"])
        large_med = np.median(by_size["large"])
        # No significant difference between the regimes (paper Section 7).
        assert abs(small_med - large_med) < 0.08, name
