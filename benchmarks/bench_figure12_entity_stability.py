"""Figure 12: pairwise top-10 entity stability heatmaps per domain.

Regenerates the model x model stability matrices for the tennis-players,
movies, and biochemistry query domains (K = 10) and asserts the figure's
headline: the domain matters — different model pairs agree most on
different domains — and every matrix is a valid symmetric overlap matrix.
"""

import numpy as np

from benchmarks._common import FIGURE12_MODELS, observatory, print_header
from repro.analysis.reporting import format_matrix
from repro.core.properties import EntityStability, EntityStabilityConfig

DOMAINS = ("tennis_players", "movies", "biochemistry")
PANEL = FIGURE12_MODELS[:5]  # heatmap subset keeps the bench brisk


def run_figure12():
    obs = observatory()
    catalog = obs.entity_catalog()
    models = [obs.model(name) for name in PANEL]
    config = EntityStabilityConfig(k=10)
    return {
        domain: EntityStability.pairwise_matrix(models, catalog, domain, config)
        for domain in DOMAINS
    }


def test_figure12_entity_stability(benchmark):
    matrices = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    best_pairs = {}
    for domain, matrix in matrices.items():
        print_header(f"Figure 12: pairwise top-10 entity stability ({domain})")
        print(format_matrix(matrix, PANEL))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0
        off = matrix.copy()
        np.fill_diagonal(off, -1.0)
        best_pairs[domain] = np.unravel_index(off.argmax(), off.shape)
    # Domain is a key factor: the most-agreeing pair differs across domains
    # (allowing one coincidence among the three).
    assert len({tuple(sorted(p)) for p in best_pairs.values()}) >= 2
