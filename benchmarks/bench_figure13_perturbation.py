"""Figure 13: cosine distributions for original vs perturbed columns.

Regenerates the schema-synonym and schema-abbreviation panels and asserts
the paper's orderings: vanilla BERT/T5 most robust, TaBERT least robust,
DODUO with exactly zero variance (it never reads the schema), and overall
table models more schema-sensitive than the LM cluster.
"""

import pytest

from benchmarks._common import FIGURE13_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table

KINDS = ("schema-synonym", "schema-abbreviation")


def run_figure13():
    grid = {}
    for name in FIGURE13_MODELS:
        result = characterize(name, "perturbation_robustness")
        grid[name] = {
            kind: (
                result.distributions[f"{kind}/cosine"],
                result.scalars[f"mean/{kind}"],
            )
            for kind in KINDS
        }
    return grid


def test_figure13_perturbation(benchmark):
    grid = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    for kind in KINDS:
        print_header(f"Figure 13: cosine, original vs {kind} perturbed columns")
        rows = [
            [
                name,
                grid[name][kind][0].minimum,
                grid[name][kind][0].q1,
                grid[name][kind][0].median,
                grid[name][kind][1],
            ]
            for name in FIGURE13_MODELS
        ]
        print(format_value_table(rows, ["model", "min", "q1", "median", "mean"]))

    for kind in KINDS:
        medians = {name: grid[name][kind][0].median for name in FIGURE13_MODELS}
        # DODUO: exactly invariant.
        assert grid["doduo"][kind][0].minimum == pytest.approx(1.0, abs=1e-9)
        # BERT and T5 sit in the top band.
        assert medians["bert"] > 0.97 and medians["t5"] > 0.97
        # TaBERT is the least robust non-trivial model.
        non_trivial = {n: m for n, m in medians.items() if n != "doduo"}
        assert medians["tabert"] == min(non_trivial.values())
