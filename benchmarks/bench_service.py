"""Characterization-service benchmark: request latency cold vs cache-hot.

Starts an in-process :class:`repro.CharacterizationService` over a
benchmark-scale Observatory and measures, through the real HTTP plane
(:class:`repro.ServiceClient` over keep-alive ``http.client``):

- **cold characterization** latency (p50/p95) — each request is a distinct
  (model, property) cell, so every one runs a full sweep behind the
  admission queue;
- **cache-hot** latency and throughput (req/s) — the same cells again,
  answered from the service result cache without touching the runtime;
- **served index queries** (p50/p95) against a :class:`repro.ColumnIndex`
  built and populated through the ``/v1/index`` routes.

Gates:

- every cold result is bit-identical to the same cell re-requested hot
  (the cache returns the stored payload, never a recomputation);
- cache-hot median latency is **>= 5x faster** than cold median — the
  fast path must actually be fast;
- served index hits equal a direct :meth:`ColumnIndex.query` oracle call.

Usage::

    python benchmarks/bench_service.py                 # full panel
    python benchmarks/bench_service.py --smoke         # tiny CI gate
    python benchmarks/bench_service.py --json BENCH_service.json

``--json PATH`` writes every timing into a machine-readable record
(written even when a gate fails, so CI keeps the evidence).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from repro import ColumnIndex, Observatory, ServiceClient
from repro.core.framework import DatasetSizes
from repro.service import CharacterizationService, ServiceConfig

DIM = 48
FULL_MODELS = ["bert", "roberta", "t5", "tapas"]
FULL_PROPERTIES = ["row_order_insignificance", "sample_fidelity"]
SMOKE_MODELS = ["bert", "t5"]
SMOKE_PROPERTIES = ["row_order_insignificance", "sample_fidelity"]
FULL_INDEX_ROWS = 512
SMOKE_INDEX_ROWS = 128
FULL_INDEX_QUERIES = 50
SMOKE_INDEX_QUERIES = 20
HOT_ROUNDS_PER_CELL = 5
CACHE_SPEEDUP_FLOOR = 5.0


def bench_observatory() -> Observatory:
    return Observatory(
        seed=7,
        sizes=DatasetSizes(
            wikitables_tables=3,
            spider_databases=2,
            nextiajd_pairs=6,
            sotab_tables=4,
            n_permutations=4,
            min_rows=4,
            max_rows=6,
        ),
    )


def percentile_ms(samples: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q) * 1e3)


def bench_requests(client: ServiceClient, cells: List[tuple]) -> Dict[str, object]:
    cold: List[float] = []
    cold_results = {}
    for model, prop in cells:
        t0 = time.perf_counter()
        result = client.characterize([model], [prop])
        cold.append(time.perf_counter() - t0)
        cold_results[(model, prop)] = result

    hot: List[float] = []
    t_hot0 = time.perf_counter()
    for _ in range(HOT_ROUNDS_PER_CELL):
        for model, prop in cells:
            t0 = time.perf_counter()
            result = client.characterize([model], [prop])
            hot.append(time.perf_counter() - t0)
            assert result == cold_results[(model, prop)], (
                f"cache-hot payload diverged from cold for ({model}, {prop})"
            )
    hot_wall = time.perf_counter() - t_hot0

    stats = client.stats()
    return {
        "cells": len(cells),
        "cold_requests": len(cold),
        "hot_requests": len(hot),
        "cold_p50_ms": percentile_ms(cold, 50),
        "cold_p95_ms": percentile_ms(cold, 95),
        "hot_p50_ms": percentile_ms(hot, 50),
        "hot_p95_ms": percentile_ms(hot, 95),
        "hot_req_per_s": len(hot) / max(hot_wall, 1e-9),
        "cache_speedup_p50": percentile_ms(cold, 50) / max(percentile_ms(hot, 50), 1e-9),
        "cache_hits": stats["cache"]["hits"],
        "cache_identical": True,
    }


def bench_index(
    client: ServiceClient, scratch: str, rows: int, n_queries: int
) -> Dict[str, object]:
    rng = np.random.default_rng(rows)
    directory = os.path.join(scratch, "served-index")
    client.index_create(directory, dim=DIM)
    entries = [
        {"key": f"col{i}", "vector": vec.tolist()}
        for i, vec in enumerate(rng.normal(size=(rows, DIM)))
    ]
    t0 = time.perf_counter()
    client.index_append(directory, entries=entries)
    append_seconds = time.perf_counter() - t0

    queries = rng.normal(size=(n_queries, DIM))
    oracle = ColumnIndex.open(directory)
    latencies: List[float] = []
    for query in queries:
        t0 = time.perf_counter()
        hits = client.index_query(directory, vector=query.tolist(), k=5)["hits"]
        latencies.append(time.perf_counter() - t0)
        expected = [
            {"key": key, "score": score}
            for key, score in oracle.query(query, 5, prune="off")
        ]
        assert [h["key"] for h in hits] == [e["key"] for e in expected], (
            "served index query diverged from the direct ColumnIndex oracle"
        )
    return {
        "rows": rows,
        "dim": DIM,
        "queries": n_queries,
        "append_seconds": append_seconds,
        "append_rows_per_s": rows / max(append_seconds, 1e-9),
        "query_p50_ms": percentile_ms(latencies, 50),
        "query_p95_ms": percentile_ms(latencies, 95),
        "oracle_identical": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny panel + hardware-independent assertions (CI gate)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write a machine-readable BENCH_*.json record",
    )
    args = parser.parse_args(argv)
    models = SMOKE_MODELS if args.smoke else FULL_MODELS
    properties = SMOKE_PROPERTIES if args.smoke else FULL_PROPERTIES
    index_rows = SMOKE_INDEX_ROWS if args.smoke else FULL_INDEX_ROWS
    index_queries = SMOKE_INDEX_QUERIES if args.smoke else FULL_INDEX_QUERIES
    cells = [(model, prop) for model in models for prop in properties]

    payload: Dict[str, object] = {
        "bench": "service",
        "schema_version": 1,
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "models": models,
        "properties": properties,
        "cache_speedup_floor": CACHE_SPEEDUP_FLOOR,
        "timestamp": time.time(),
    }

    print("=" * 72)
    print(
        f"Characterization service benchmark — {len(cells)} cells "
        f"({len(models)} models x {len(properties)} properties), "
        f"index rows={index_rows}"
    )
    print("=" * 72)
    try:
        with tempfile.TemporaryDirectory() as scratch:
            service = CharacterizationService(
                bench_observatory(),
                config=ServiceConfig(
                    state_dir=os.path.join(scratch, "state"),
                    queue_limit=max(8, len(cells)),
                    runners=2,
                ),
            )
            service.start()
            try:
                client = ServiceClient(service.url)
                requests = bench_requests(client, cells)
                payload["requests"] = requests
                print(
                    f"requests: cold p50 {requests['cold_p50_ms']:.1f}ms / "
                    f"p95 {requests['cold_p95_ms']:.1f}ms | cache-hot p50 "
                    f"{requests['hot_p50_ms']:.2f}ms / p95 "
                    f"{requests['hot_p95_ms']:.2f}ms "
                    f"({requests['hot_req_per_s']:.0f} req/s) | speedup "
                    f"{requests['cache_speedup_p50']:.1f}x | payload-identical"
                )
                index = bench_index(client, scratch, index_rows, index_queries)
                payload["index"] = index
                print(
                    f"index: append {index['append_rows_per_s']:.0f} rows/s | "
                    f"served query p50 {index['query_p50_ms']:.2f}ms / p95 "
                    f"{index['query_p95_ms']:.2f}ms | oracle-identical"
                )
                client.close()
            finally:
                service.close()

        assert requests["cache_speedup_p50"] >= CACHE_SPEEDUP_FLOOR, (
            f"cache-hot median only {requests['cache_speedup_p50']:.1f}x "
            f"faster than cold (floor {CACHE_SPEEDUP_FLOOR}x)"
        )
        payload["gates_passed"] = True
        print(
            f"gates: cache payload identity; cache-hot >= "
            f"{CACHE_SPEEDUP_FLOOR:.0f}x faster than cold "
            f"({requests['cache_speedup_p50']:.1f}x); served index "
            f"oracle-identical"
        )
    finally:
        if args.json_path:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            print(f"wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
