"""Figure 5: cosine and MCV distributions under row shuffling.

Regenerates the three panels (column/row/table embeddings) as quartile rows
per model and asserts the paper's findings: LM/TAPAS/TaBERT columns robust,
DODUO the widest spread, T5 the largest MCV at top-band cosine, and table
embeddings the most stable level.
"""


from benchmarks._common import (
    characterize,
    FIGURE5_COLUMN_MODELS,
    FIGURE5_ROW_MODELS,
    FIGURE5_TABLE_MODELS,
    print_header,
)
from repro.analysis.reporting import format_value_table


def run_panel(models, level):
    rows = []
    results = {}
    for name in models:
        result = characterize(name, "row_order_insignificance")
        results[name] = result
        cos = result.distributions.get(f"{level}/cosine")
        mcv = result.distributions.get(f"{level}/mcv")
        if cos is None or mcv is None:
            continue
        rows.append(
            [name, cos.minimum, cos.q1, cos.median, mcv.median, mcv.q3, mcv.maximum]
        )
    return rows, results


def test_figure5_row_order(benchmark):
    rows_by_level = benchmark.pedantic(
        lambda: {
            "column": run_panel(FIGURE5_COLUMN_MODELS, "column"),
            "row": run_panel(FIGURE5_ROW_MODELS, "row"),
            "table": run_panel(FIGURE5_TABLE_MODELS, "table"),
        },
        rounds=1,
        iterations=1,
    )
    headers = ["model", "cos_min", "cos_q1", "cos_med", "mcv_med", "mcv_q3", "mcv_max"]
    for level, (rows, _) in rows_by_level.items():
        print_header(f"Figure 5 ({level} embeddings, row shuffling)")
        print(format_value_table(rows, headers))

    column_rows, column_results = rows_by_level["column"]
    stats = {row[0]: row for row in column_rows}
    # Robust cluster: Q1 above 0.95 for BERT/T5/TAPAS/TaBERT.
    for name in ("bert", "t5", "tapas", "tabert"):
        assert stats[name][2] > 0.95, name
    # DODUO: the largest spread (lowest Q1 in the panel).
    assert stats["doduo"][2] == min(row[2] for row in column_rows)
    # T5: largest MCV Q3 while cosine stays top-band.
    assert stats["t5"][5] == max(row[5] for row in column_rows)
    assert stats["t5"][2] > 0.97
    # Table embeddings are the most stable level.
    table_rows, _ = rows_by_level["table"]
    for row in table_rows:
        assert row[3] > 0.9, row[0]  # median cosine
