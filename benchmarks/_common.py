"""Shared benchmark infrastructure.

Each benchmark regenerates one table or figure of the paper's evaluation:
it runs the corresponding property at a benchmark-scale configuration,
prints the same rows/series the paper reports, and asserts the qualitative
shape.  Dataset sizes scale with the ``REPRO_BENCH_SCALE`` environment
variable (default 1.0) so the same harness serves quick CI runs and fuller
reproductions.
"""

from __future__ import annotations

import os
from typing import Dict

from repro import Observatory
from repro.core.framework import DatasetSizes

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(base: int, minimum: int = 2) -> int:
    return max(minimum, round(base * SCALE))


# Model panels per figure, mirroring the paper's "models in scope" rows.
FIGURE5_COLUMN_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "turl", "doduo"]
FIGURE5_ROW_MODELS = ["bert", "roberta", "t5", "tapas", "tapex"]
FIGURE5_TABLE_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "turl", "tapex"]
TABLE3_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "doduo"]
TABLE4_MODELS = ["bert", "roberta", "t5", "tapas", "doduo"]
FIGURE11_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "turl", "doduo", "tapex"]
FIGURE12_MODELS = ["bert", "roberta", "t5", "turl", "doduo", "tapas", "tapex"]
FIGURE13_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "doduo", "tapex"]
TABLE5_MODELS = ["bert", "roberta", "t5", "tapas", "tabert", "doduo"]

_OBSERVATORY: Dict[int, Observatory] = {}


def observatory(seed: int = 0) -> Observatory:
    """Benchmark-scale Observatory, cached per seed."""
    if seed not in _OBSERVATORY:
        _OBSERVATORY[seed] = Observatory(
            seed=seed,
            sizes=DatasetSizes(
                wikitables_tables=scaled(12),
                spider_databases=scaled(5),
                nextiajd_pairs=scaled(80, minimum=20),
                sotab_tables=scaled(20),
                n_permutations=scaled(10, minimum=4),
            ),
        )
    return _OBSERVATORY[seed]


_RESULT_CACHE: Dict[tuple, object] = {}


def characterize(model_name: str, property_name: str, **kwargs):
    """Memoized Observatory.characterize — several benches share panels."""
    key = (model_name, property_name, tuple(sorted(kwargs.items())))
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = observatory().characterize(
            model_name, property_name, **kwargs
        )
    return _RESULT_CACHE[key]


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
