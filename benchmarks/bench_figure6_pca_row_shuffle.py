"""Figure 6: PCA of row-permutation variants of column embeddings, BERT vs T5.

The paper projects the 6! = 720 row-permutation variants of each column of
one six-row table and shows T5's cloud stretched along one direction while
BERT's stays near-isotropic.  The bench regenerates the projections and
reports the PC1/PC2 spread ratio per column; T5's anisotropy must exceed
BERT's.
"""

import numpy as np

from benchmarks._common import observatory, print_header, scaled
from repro.analysis.pca import PCA, spread_ratio
from repro.analysis.reporting import format_value_table
from repro.data.wikitables import WikiTablesGenerator
from repro.relational.permutations import sample_permutations


def run_projection(n_permutations):
    obs = observatory()
    table = WikiTablesGenerator(seed=41).generate_table("countries", 6, table_index=0)
    perms = sample_permutations(
        table.num_rows, n_permutations, seed_parts=(table.table_id, "fig6")
    )
    out = {}
    for name in ("bert", "t5"):
        model = obs.model(name)
        variants = np.stack(
            [model.embed_columns(table.reorder_rows(list(p))) for p in perms]
        )  # [n_perms, n_cols, dim]
        ratios = []
        for col in range(table.num_columns):
            projected = PCA(2).fit_transform(variants[:, col, :])
            ratios.append(spread_ratio(projected))
        out[name] = ratios
    return out


def test_figure6_pca_row_shuffle(benchmark):
    ratios = benchmark.pedantic(
        lambda: run_projection(scaled(48, minimum=24)), rounds=1, iterations=1
    )
    print_header("Figure 6: PC1/PC2 spread ratio of row-permutation clouds")
    rows = [
        [name] + [float(r) for r in values] for name, values in ratios.items()
    ]
    headers = ["model"] + [f"col{i}" for i in range(len(rows[0]) - 1)]
    print(format_value_table(rows, headers))
    # T5 embeddings stretch along one direction far more than BERT's.
    assert np.median(ratios["t5"]) > np.median(ratios["bert"])
    assert max(ratios["t5"]) > 2.0
