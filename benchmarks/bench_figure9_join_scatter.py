"""Figure 9: scatter of embedding cosine vs multiset Jaccard per model.

The bench regenerates the scatter series (kept on the result), prints a
binned summary per model, and asserts the positive relationship the figure
illustrates: mean cosine rises from the low-overlap bin to the high-overlap
bin, and multiset Jaccard never exceeds its theoretical maximum of 0.5.
"""

import numpy as np

from benchmarks._common import TABLE3_MODELS, observatory, print_header
from repro.analysis.reporting import format_value_table
from repro.core.properties import JoinRelationship, JoinRelationshipConfig


def run_figure9():
    obs = observatory()
    pairs = obs.join_pairs()
    runner = JoinRelationship()
    config = JoinRelationshipConfig(keep_series=True)
    series = {}
    for name in TABLE3_MODELS[:4]:  # scatter subset keeps the bench fast
        result = runner.run(obs.model(name), pairs, config)
        series[name] = (
            result.series["overlap/multiset_jaccard"],
            result.series["cosine"],
        )
    return series


def test_figure9_join_scatter(benchmark):
    series = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    print_header("Figure 9: cosine vs multiset Jaccard (binned means)")
    rows = []
    for name, (overlap, cosine) in series.items():
        overlap = np.asarray(overlap)
        cosine = np.asarray(cosine)
        assert overlap.max() <= 0.5 + 1e-9
        low = cosine[overlap <= np.median(overlap)].mean()
        high = cosine[overlap > np.median(overlap)].mean()
        rows.append([name, float(low), float(high), float(high - low)])
    print(format_value_table(rows, ["model", "cos_low_bin", "cos_high_bin", "delta"]))
    for name, low, high, delta in rows:
        assert delta > 0.0, name  # positive relationship
