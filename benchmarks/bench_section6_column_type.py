"""Section 6 (P1/P2 connection): column-type-prediction stability.

The paper predicts semantic column types with DODUO over row-permuted
WikiTables and counts changed predictions: 34.0% of permuted tables change
at least one type, 12.8% at least two, 5.4% at least three.  The bench
regenerates those three fractions for DODUO and contrasts them with BERT
(robust embeddings -> stable predictions).
"""


from benchmarks._common import observatory, print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.data.wikitables import WikiTablesGenerator
from repro.downstream.column_type_prediction import (
    ColumnTypePredictor,
    permutation_stability,
)


def run_stability():
    obs = observatory()
    train = WikiTablesGenerator(seed=7).generate(scaled(16), min_rows=5, max_rows=8)
    evaluate = WikiTablesGenerator(seed=8).generate(scaled(10), min_rows=5, max_rows=8)
    reports = {}
    for name in ("doduo", "bert"):
        predictor = ColumnTypePredictor(obs.model(name)).fit(train)
        reports[name] = permutation_stability(
            predictor, evaluate, n_permutations=scaled(8, minimum=4)
        )
    return reports


def test_section6_column_type_stability(benchmark):
    reports = benchmark.pedantic(run_stability, rounds=1, iterations=1)
    print_header("Section 6: prediction changes under row permutations")
    rows = [
        [name, r.mean_columns]
        + [r.fraction_at_least[k] for k in (1, 2, 3)]
        for name, r in reports.items()
    ]
    print(format_value_table(rows, ["model", "avg_cols", ">=1", ">=2", ">=3"]))

    doduo = reports["doduo"].fraction_at_least
    bert = reports["bert"].fraction_at_least
    # DODUO's order sensitivity shows up as unstable predictions…
    assert doduo[1] > 0.05
    # …with the paper's monotone threshold profile…
    assert doduo[1] >= doduo[2] >= doduo[3]
    # …and markedly less stability than the order-robust BERT.
    assert doduo[1] > bert[1]
