"""Table 4: average group-wise FD-translation variances, FD vs non-FD.

Regenerates the two-row table (S^2 over columns with and without FDs) for
the five models and asserts the paper's shape: TAPAS is the only model with
S^2_FD < S^2_nonFD by a clear margin at near-zero FD variance, and DODUO's
unnormalized magnitudes dwarf everyone.
"""


from benchmarks._common import TABLE4_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table


def run_table4():
    out = {}
    for name in TABLE4_MODELS:
        result = characterize(name, "functional_dependencies")
        out[name] = (
            result.scalars["mean_s2/fd"],
            result.scalars["mean_s2/non_fd"],
        )
    return out


def test_table4_fd_variance(benchmark):
    grid = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print_header("Table 4: mean S^2 over FD / non-FD column pairs (L2)")
    rows = [
        ["Columns w/ FD"] + [grid[m][0] for m in TABLE4_MODELS],
        ["Columns w/o FD"] + [grid[m][1] for m in TABLE4_MODELS],
    ]
    print(format_value_table(rows, ["setting"] + TABLE4_MODELS))

    # DODUO's raw-stream magnitudes dwarf the layer-normalized models.
    for name in ("bert", "roberta", "tapas"):
        assert grid["doduo"][0] > 20 * grid[name][0], name
    # TAPAS aligns with the expected FD pattern (S2_FD < S2_nonFD) and has
    # the smallest FD variance of the panel.
    assert grid["tapas"][0] < grid["tapas"][1]
    assert grid["tapas"][0] == min(grid[m][0] for m in TABLE4_MODELS)
