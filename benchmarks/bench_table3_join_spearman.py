"""Table 3: Spearman coefficients between value overlap and embedding cosine.

Regenerates the 3 x 6 coefficient grid (containment / Jaccard / multiset
Jaccard x six models) on NextiaJD-XS-like pairs with quality > 0, checks
significance, and asserts the headline shape: multiset Jaccard is the most
correlated measure for every model.
"""


from benchmarks._common import TABLE3_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table

MEASURES = ("containment", "jaccard", "multiset_jaccard")


def run_table3():
    grid = {}
    for name in TABLE3_MODELS:
        result = characterize(name, "join_relationship")
        grid[name] = {
            measure: (
                result.scalars[f"spearman/{measure}"],
                result.scalars[f"p_value/{measure}"],
            )
            for measure in MEASURES
        }
    return grid


def test_table3_join_spearman(benchmark):
    grid = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print_header("Table 3: Spearman(overlap, embedding cosine), NextiaJD-XS")
    rows = [
        [measure] + [grid[m][measure][0] for m in TABLE3_MODELS]
        for measure in MEASURES
    ]
    print(format_value_table(rows, ["measure"] + TABLE3_MODELS))

    for name in TABLE3_MODELS:
        mj, mj_p = grid[name]["multiset_jaccard"]
        # Multiset Jaccard is the most positively correlated measure and is
        # statistically significant (paper: all entries p < 0.01).  TaBERT's
        # header-dominated embedding leaks signal into the (correlated)
        # containment measure, so it gets a wider tolerance (EXPERIMENTS.md
        # records the deviation).
        tolerance = 0.10 if name == "tabert" else 0.05
        assert mj >= grid[name]["containment"][0] - tolerance, name
        assert mj >= grid[name]["jaccard"][0] - tolerance, name
        assert mj > 0.25, name
        assert mj_p < 0.01, name
