"""Figure 7: cosine and MCV distributions under column shuffling.

Regenerates the column- and row-embedding panels and asserts the paper's
Section 5.2 findings: column shuffling perturbs more than row shuffling,
RoBERTa's median drops by a larger margin than BERT's, and DODUO's drop is
the largest.
"""


from benchmarks._common import FIGURE5_COLUMN_MODELS, characterize, print_header
from repro.analysis.reporting import format_value_table

ROW_PANEL_MODELS = ["bert", "roberta", "t5", "tapas", "tapex", "taptap"]


def run_figure7():
    out = {"column": [], "row": []}
    for name in FIGURE5_COLUMN_MODELS:
        result = characterize(name, "column_order_insignificance")
        cos = result.distributions.get("column/cosine")
        mcv = result.distributions.get("column/mcv")
        if cos and mcv:
            out["column"].append(
                [name, cos.minimum, cos.q1, cos.median, mcv.median, mcv.q3]
            )
    for name in ROW_PANEL_MODELS:
        result = characterize(name, "column_order_insignificance")
        cos = result.distributions.get("row/cosine")
        mcv = result.distributions.get("row/mcv")
        if cos and mcv:
            out["row"].append(
                [name, cos.minimum, cos.q1, cos.median, mcv.median, mcv.q3]
            )
    return out


def test_figure7_column_order(benchmark):
    panels = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    headers = ["model", "cos_min", "cos_q1", "cos_med", "mcv_med", "mcv_q3"]
    for level, rows in panels.items():
        print_header(f"Figure 7 ({level} embeddings, column shuffling)")
        print(format_value_table(rows, headers))

    column_stats = {row[0]: row for row in panels["column"]}
    # Column shuffles perturb more than row shuffles (medians drop).
    for name in ("roberta", "doduo", "tapas"):
        row_result = characterize(name, "row_order_insignificance")
        assert (
            column_stats[name][3]
            <= row_result.distributions["column/cosine"].median + 1e-9
        ), name
    # RoBERTa's drop exceeds BERT's; DODUO's drop is the largest.
    assert column_stats["roberta"][3] < column_stats["bert"][3]
    assert column_stats["doduo"][3] == min(row[3] for row in panels["column"])
