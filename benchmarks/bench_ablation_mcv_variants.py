"""Ablation: why Albert–Zhang's MCV (Measure 1 design choice).

The paper chooses Albert–Zhang's MCV because the number of embedding
observations (permutation variants) is usually smaller than the embedding
dimensionality, making the covariance matrix singular.  This bench builds
exactly that regime from real row-shuffle embeddings and shows: Reyment's
determinant-based MCV collapses to 0, Voinov–Nikulin's inverse-based MCV is
undefined, Van Valen's ignores correlations, while Albert–Zhang stays
finite, positive, and discriminative across models.
"""

import numpy as np

from benchmarks._common import observatory, print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.core.measures.mcv import (
    albert_zhang_mcv,
    reyment_mcv,
    van_valen_mcv,
    voinov_nikulin_mcv,
)
from repro.data.wikitables import WikiTablesGenerator
from repro.errors import MeasureError
from repro.relational.permutations import sample_permutations


def embedding_trajectories(n_permutations):
    obs = observatory()
    table = WikiTablesGenerator(seed=51).generate_table("tennis", 7, table_index=0)
    perms = sample_permutations(
        table.num_rows, n_permutations, seed_parts=(table.table_id, "ablation")
    )
    out = {}
    for name in ("bert", "t5", "doduo"):
        model = obs.model(name)
        variants = np.stack(
            [model.embed_columns(table.reorder_rows(list(p))) for p in perms]
        )
        out[name] = variants[:, 0, :]  # first column's trajectory, n << dim
    return out


def test_ablation_mcv_variants(benchmark):
    trajectories = benchmark.pedantic(
        lambda: embedding_trajectories(scaled(12, minimum=8)), rounds=1, iterations=1
    )
    print_header("Ablation: MCV variants on singular-covariance trajectories")
    rows = []
    for name, samples in trajectories.items():
        az = albert_zhang_mcv(samples)
        reyment = reyment_mcv(samples)
        van_valen = van_valen_mcv(samples)
        try:
            voinov = f"{voinov_nikulin_mcv(samples):.4f}"
        except MeasureError:
            voinov = "undefined (singular)"
        rows.append([name, az, reyment, van_valen, voinov])
    print(
        format_value_table(
            rows, ["model", "albert_zhang", "reyment", "van_valen", "voinov_nikulin"],
            precision=4,
        )
    )
    for name, az, reyment, _, voinov in rows:
        assert az > 0.0, name
        # The determinant collapses (to numerical zero) when n < d.
        assert reyment < 1e-6 * az, name
        assert voinov == "undefined (singular)", name
    # AZ is discriminative: the order-sensitive models disperse more.
    az_values = {row[0]: row[1] for row in rows}
    assert az_values["doduo"] > az_values["bert"]
