"""Section 6 (P7 connection): TableQA accuracy under schema perturbations.

The paper observes fine-tuned TAPAS losing 6.2/8.3 accuracy points under
synonym/abbreviation perturbations on WikiTableQuestions (19.0/22.2 on
WikiSQL).  The bench runs the cell-selection QA harness on original and
perturbed tables and asserts the shape: a clear accuracy drop under both
perturbation kinds, with abbreviations hurting at least as much as
synonyms.
"""


from benchmarks._common import observatory, print_header, scaled
from repro.analysis.reporting import format_value_table
from repro.data.drspider import PerturbationKind
from repro.data.wikitables import WikiTablesGenerator
from repro.downstream.table_qa import evaluate_qa_robustness


def run_table_qa():
    obs = observatory()
    corpus = WikiTablesGenerator(seed=31).generate(scaled(12), min_rows=5, max_rows=8)
    return evaluate_qa_robustness(
        obs.model("tapas"),
        corpus,
        per_table=3,
        kinds=(
            PerturbationKind.SCHEMA_SYNONYM,
            PerturbationKind.SCHEMA_ABBREVIATION,
        ),
        seed=31,
    )


def test_section6_table_qa(benchmark):
    report = benchmark.pedantic(run_table_qa, rounds=1, iterations=1)
    print_header("Section 6: TableQA accuracy under schema perturbations")
    rows = [["original", report.accuracy_original, 0.0]]
    for kind, accuracy in report.accuracy_perturbed.items():
        rows.append([kind, accuracy, report.drop(kind)])
    print(format_value_table(rows, ["tables", "accuracy", "drop (pts)"]))

    assert report.accuracy_original > 0.5  # the QA works on clean tables
    for kind in report.accuracy_perturbed:
        assert report.drop(kind) > 2.0, kind  # clear degradation
    assert (
        report.drop("schema-abbreviation") >= report.drop("schema-synonym") - 5.0
    )
